#pragma once

/// \file joint_wl.hpp
/// Sequential Wang-Landau sampler for the joint density of states g(E, M_z).
/// The flat-histogram walk runs in the (energy, magnetization) plane, which
/// gives direct access to constrained free energies F(M_z; T) — the
/// temperature-dependent switching barriers of the paper's FePt application
/// (refs [14], [15]).

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "spin/moments.hpp"
#include "spin/moves.hpp"
#include "wl/energy_function.hpp"
#include "wl/joint_dos.hpp"
#include "wl/schedule.hpp"

namespace wlsms::wl {

/// Run parameters for the joint estimation.
struct JointWangLandauConfig {
  JointDosConfig grid;
  double flatness = 0.6;  ///< 2-D grids are harder to flatten; default lower
  std::uint64_t check_interval = 2000;
  std::uint64_t max_steps = UINT64_MAX;
  /// Cap on one flatness iteration (0 = 1000 * cells); see
  /// WangLandauConfig::max_iteration_steps.
  std::uint64_t max_iteration_steps = 0;
};

/// Counters of a joint run.
struct JointWangLandauStats {
  std::uint64_t total_steps = 0;
  std::uint64_t accepted_steps = 0;
  std::uint64_t out_of_range = 0;
  std::size_t iterations = 0;
  std::size_t forced_iterations = 0;  ///< gamma cuts by iteration-step cap
};

/// Single-walker Wang-Landau estimator of ln g(E, M_z).
class JointWangLandau {
 public:
  JointWangLandau(const EnergyFunction& energy,
                  const JointWangLandauConfig& config,
                  std::unique_ptr<ModificationSchedule> schedule, Rng rng);

  /// Advances one WL step; false once converged or at the step cap.
  bool step();

  /// Runs to convergence (or the cap); returns the stats.
  const JointWangLandauStats& run();

  bool converged() const { return schedule_->converged(); }
  const JointDos& dos() const { return dos_; }
  const JointWangLandauStats& stats() const { return stats_; }
  const spin::MomentConfiguration& configuration() const { return config_w_; }

 private:
  const EnergyFunction& energy_;
  JointWangLandauConfig config_;
  JointDos dos_;
  std::unique_ptr<ModificationSchedule> schedule_;
  Rng rng_;
  spin::UniformSphereMove move_generator_;
  spin::MomentConfiguration config_w_;
  double energy_w_ = 0.0;
  double m_w_ = 0.0;
  JointWangLandauStats stats_;
  std::uint64_t iteration_steps_ = 0;
  std::size_t previous_hit_cells_ = 0;
};

}  // namespace wlsms::wl
