#pragma once

/// \file schedule.hpp
/// Modification-factor schedules for the Wang-Landau iteration.
///
/// The paper uses the classic schedule: start at gamma = ln f = 1, halve
/// whenever the histogram is flat, stop when gamma reaches a floor
/// ("until ln f ~ 0", §II-A). The 1/t refinement of Belardinelli & Pereyra
/// (J. Chem. Phys. 127, 184105 (2007)) — switch to gamma = bins/t once the
/// halving schedule crosses it — removes the known error saturation of the
/// classic schedule and is provided as the optional extension exercised by
/// bench_ablation_schedule.

#include <cstddef>
#include <cstdint>
#include <memory>

namespace wlsms::wl {

/// Strategy controlling gamma (the ln f of eqs. 6/8) over the run.
class ModificationSchedule {
 public:
  virtual ~ModificationSchedule() = default;

  /// Current modification factor.
  virtual double gamma() const = 0;

  /// Called when the flatness criterion fires; the classic schedule halves
  /// gamma here. Returns the new gamma.
  virtual double on_flat_histogram(std::uint64_t total_steps) = 0;

  /// Called every step; 1/t-type schedules decay here. Returns current gamma.
  virtual double on_step(std::uint64_t total_steps) = 0;

  /// True when the density of states counts as converged (gamma at floor).
  virtual bool converged() const = 0;

  virtual std::unique_ptr<ModificationSchedule> clone() const = 0;
};

/// The paper's schedule: gamma_0 = 1, gamma -> gamma/2 on flat histogram,
/// converged when gamma <= gamma_final.
class HalvingSchedule final : public ModificationSchedule {
 public:
  explicit HalvingSchedule(double gamma_initial = 1.0,
                           double gamma_final = 1e-6);

  double gamma() const override { return gamma_; }
  double on_flat_histogram(std::uint64_t total_steps) override;
  double on_step(std::uint64_t total_steps) override { (void)total_steps; return gamma_; }
  bool converged() const override { return gamma_ <= gamma_final_; }
  std::unique_ptr<ModificationSchedule> clone() const override;

  double gamma_final() const { return gamma_final_; }
  /// Number of halvings performed so far.
  std::size_t iterations() const { return iterations_; }

 private:
  double gamma_;
  double gamma_final_;
  std::size_t iterations_ = 0;
};

/// Belardinelli-Pereyra: classic halving until gamma < bins/t, then
/// gamma = bins/t every step (t = total WL steps taken).
class OneOverTSchedule final : public ModificationSchedule {
 public:
  OneOverTSchedule(std::size_t bins, double gamma_initial = 1.0,
                   double gamma_final = 1e-6);

  double gamma() const override { return gamma_; }
  double on_flat_histogram(std::uint64_t total_steps) override;
  double on_step(std::uint64_t total_steps) override;
  bool converged() const override { return gamma_ <= gamma_final_; }
  std::unique_ptr<ModificationSchedule> clone() const override;

  bool in_one_over_t_phase() const { return one_over_t_; }

 private:
  double bins_;
  double gamma_;
  double gamma_final_;
  bool one_over_t_ = false;
};

}  // namespace wlsms::wl
