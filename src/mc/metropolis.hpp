#pragma once

/// \file metropolis.hpp
/// Conventional Metropolis importance sampling — the baseline the paper
/// contrasts Wang-Landau against (§II-A): efficient at a *single*
/// temperature, trapped by corrugated landscapes, and requiring a separate
/// simulation per temperature, whereas one converged Wang-Landau DOS yields
/// all temperatures at once.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "spin/moments.hpp"
#include "spin/moves.hpp"
#include "wl/energy_function.hpp"

namespace wlsms::mc {

/// Parameters of a single-temperature Metropolis run.
struct MetropolisConfig {
  double temperature_k = 300.0;
  std::uint64_t thermalization_steps = 100000;  ///< discarded burn-in
  std::uint64_t measurement_steps = 1000000;    ///< sampled steps
  std::uint64_t measure_interval = 10;          ///< steps between samples
  /// Cone half-angle for trial moves [rad]; <= 0 selects the paper's
  /// uniform-sphere move instead.
  double cone_half_angle = 0.0;
};

/// Canonical averages from one run.
struct MetropolisResult {
  double temperature = 0.0;        ///< [K]
  double mean_energy = 0.0;        ///< U = <E> [Ry]
  double specific_heat = 0.0;      ///< Var(E)/(k_B T^2) [Ry/K]
  double mean_magnetization = 0.0; ///< <|M|> per site
  double acceptance = 0.0;         ///< accepted / proposed
  std::uint64_t energy_evaluations = 0;
};

/// Runs single-temperature Metropolis on `energy`. The walk starts from
/// `initial` (pass a random configuration for high T, the ferromagnetic one
/// for low T to shorten burn-in). When `final_state` is non-null the chain's
/// last configuration is stored there (for warm-starting a colder run).
MetropolisResult metropolis_run(const wl::EnergyFunction& energy,
                                const spin::MomentConfiguration& initial,
                                const MetropolisConfig& config, Rng& rng,
                                spin::MomentConfiguration* final_state = nullptr);

/// Temperature sweep: one independent Metropolis run per temperature
/// (each seeded from the previous run's final configuration, warm-starting
/// the chain as production codes do). Temperatures are processed in
/// descending order internally and returned in the order given.
std::vector<MetropolisResult> metropolis_sweep(
    const wl::EnergyFunction& energy, const std::vector<double>& temperatures,
    const MetropolisConfig& base_config, Rng& rng);

}  // namespace wlsms::mc
