#include "mc/metropolis.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace wlsms::mc {

MetropolisResult metropolis_run(const wl::EnergyFunction& energy,
                                const spin::MomentConfiguration& initial,
                                const MetropolisConfig& config, Rng& rng,
                                spin::MomentConfiguration* final_state) {
  WLSMS_EXPECTS(config.temperature_k > 0.0);
  WLSMS_EXPECTS(initial.size() == energy.n_sites());
  WLSMS_EXPECTS(config.measure_interval >= 1);

  const double beta = units::beta_from_kelvin(config.temperature_k);
  spin::MomentConfiguration state = initial;
  double e = energy.total_energy(state);

  const spin::UniformSphereMove sphere_move;
  const bool use_cone = config.cone_half_angle > 0.0;
  const spin::ConeMove cone_move(use_cone ? config.cone_half_angle : 0.5);

  std::uint64_t accepted = 0;
  std::uint64_t evaluations = 1;  // the initial total energy
  double sum_e = 0.0;
  double sum_e2 = 0.0;
  double sum_m = 0.0;
  std::uint64_t samples = 0;

  const std::uint64_t total =
      config.thermalization_steps + config.measurement_steps;
  for (std::uint64_t step = 0; step < total; ++step) {
    const spin::TrialMove move = use_cone ? cone_move.propose(state, rng)
                                          : sphere_move.propose(state, rng);
    const double e_new = energy.energy_after_move(state, move, e);
    ++evaluations;
    const double delta = e_new - e;
    // Metropolis rule, eq. 2: accept with min[1, exp(-beta dE)].
    if (delta <= 0.0 || rng.uniform() < std::exp(-beta * delta)) {
      state.set(move.site, move.new_direction);
      e = e_new;
      ++accepted;
    }
    if (step >= config.thermalization_steps &&
        (step - config.thermalization_steps) % config.measure_interval == 0) {
      sum_e += e;
      sum_e2 += e * e;
      sum_m += state.magnetization();
      ++samples;
    }
    // Guard against floating-point drift of the incrementally updated E.
    if ((step & ((1u << 22) - 1)) == 0) e = energy.total_energy(state);
  }

  MetropolisResult result;
  result.temperature = config.temperature_k;
  WLSMS_ENSURES(samples > 0);
  const double mean_e = sum_e / static_cast<double>(samples);
  const double mean_e2 = sum_e2 / static_cast<double>(samples);
  result.mean_energy = mean_e;
  result.specific_heat =
      std::max(0.0, mean_e2 - mean_e * mean_e) /
      (units::k_boltzmann_ry * config.temperature_k * config.temperature_k);
  result.mean_magnetization = sum_m / static_cast<double>(samples);
  result.acceptance = static_cast<double>(accepted) / static_cast<double>(total);
  result.energy_evaluations = evaluations;
  if (final_state) *final_state = state;
  return result;
}

std::vector<MetropolisResult> metropolis_sweep(
    const wl::EnergyFunction& energy, const std::vector<double>& temperatures,
    const MetropolisConfig& base_config, Rng& rng) {
  WLSMS_EXPECTS(!temperatures.empty());

  // Process hot to cold so each chain warm-starts from the previous one
  // (annealing), then restore the caller's ordering.
  std::vector<std::size_t> order(temperatures.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return temperatures[a] > temperatures[b];
  });

  std::vector<MetropolisResult> results(temperatures.size());
  spin::MomentConfiguration state =
      spin::MomentConfiguration::random(energy.n_sites(), rng);
  for (std::size_t i : order) {
    MetropolisConfig config = base_config;
    config.temperature_k = temperatures[i];
    results[i] = metropolis_run(energy, state, config, rng, &state);
  }
  return results;
}

}  // namespace wlsms::mc
