// Tests for the joint density of states g(E, M_z) and its sampler.
#include "wl/joint_wl.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "heisenberg/heisenberg.hpp"
#include "lattice/cluster.hpp"
#include "wl/joint_dos.hpp"

namespace wlsms::wl {
namespace {

JointDosConfig small_grid() {
  JointDosConfig config;
  config.e_min = -1.05;
  config.e_max = 1.05;
  config.e_bins = 42;
  config.m_min = -1.05;
  config.m_max = 1.05;
  config.m_bins = 21;
  config.e_kernel_fraction = 0.012;  // ~half an E bin
  config.m_kernel_fraction = 0.024;  // ~half an M bin
  return config;
}

TEST(JointDos, GeometryAccessors) {
  const JointDos dos(small_grid());
  EXPECT_EQ(dos.e_bins(), 42u);
  EXPECT_EQ(dos.m_bins(), 21u);
  EXPECT_NEAR(dos.e_center(0), -1.025, 1e-12);
  EXPECT_NEAR(dos.m_center(10), 0.0, 1e-12);
}

TEST(JointDos, VisitMarksCell) {
  JointDos dos(small_grid());
  EXPECT_TRUE(dos.visit(0.0, 0.0, 1.0));
  EXPECT_FALSE(dos.visit(0.0, 0.0, 1.0));
  EXPECT_EQ(dos.visited_cells(), 1u);
  EXPECT_EQ(dos.cell_hits(dos.e_bins() / 2, dos.m_bins() / 2), 2u);
}

TEST(JointDos, LnGBilinearInterpolationIsExactOnCenters) {
  JointDos dos(small_grid());
  dos.visit(dos.e_center(20), dos.m_center(10), 2.0);
  EXPECT_NEAR(dos.ln_g(dos.e_center(20), dos.m_center(10)), 2.0, 1e-10);
}

TEST(JointDos, FlatnessOverVisitedCells) {
  JointDos dos(small_grid());
  for (int round = 0; round < 30; ++round)
    for (std::size_t be = 10; be < 20; ++be)
      for (std::size_t bm = 5; bm < 15; ++bm)
        dos.visit(dos.e_center(be), dos.m_center(bm), 0.01);
  EXPECT_TRUE(dos.is_flat(0.9));
  // Heavily revisit one cell: imbalance breaks flatness.
  for (int k = 0; k < 2000; ++k)
    dos.visit(dos.e_center(12), dos.m_center(7), 0.01);
  EXPECT_FALSE(dos.is_flat(0.9));
}

TEST(JointDos, ContractViolations) {
  JointDos dos(small_grid());
  EXPECT_THROW(dos.visit(5.0, 0.0, 1.0), ContractError);
  EXPECT_THROW(dos.ln_g(0.0, 5.0), ContractError);
  EXPECT_THROW(dos.cell_ln_g(99, 0), ContractError);
}

class ConvergedAnisotropicDimer : public ::testing::Test {
 protected:
  // Two exchange-coupled moments with a shared easy axis: the minimal model
  // with a genuine switching barrier in M_z.
  static const JointWangLandau& sampler() {
    static const JointWangLandau cached = [] {
      auto structure = lattice::make_cubic_cluster(
          lattice::CubicLattice::kSimpleCubic, 1.0, 2, 1, 1);
      heisenberg::HeisenbergModel model(structure, {0.4});
      model.set_uniform_anisotropy(0.3, {0.0, 0.0, 1.0});
      static const HeisenbergEnergy energy{std::move(model)};

      JointWangLandauConfig config;
      config.grid.e_min = -1.45;
      config.grid.e_max = 0.75;
      config.grid.e_bins = 44;
      config.grid.m_min = -1.05;
      config.grid.m_max = 1.05;
      config.grid.m_bins = 21;
      config.grid.e_kernel_fraction = 0.012;
      config.grid.m_kernel_fraction = 0.024;
      config.flatness = 0.6;
      config.check_interval = 5000;
      config.max_iteration_steps = 2000000;
      config.max_steps = 80000000;
      JointWangLandau sampler(energy, config,
                              std::make_unique<HalvingSchedule>(1.0, 1e-4),
                              Rng(31));
      sampler.run();
      return sampler;
    }();
    return cached;
  }
};

TEST_F(ConvergedAnisotropicDimer, ExploresBothMagnetizationSigns) {
  const JointDos& dos = sampler().dos();
  bool positive = false;
  bool negative = false;
  for (std::size_t bm = 0; bm < dos.m_bins(); ++bm)
    for (std::size_t be = 0; be < dos.e_bins(); ++be)
      if (dos.cell_visited(be, bm)) {
        if (dos.m_center(bm) > 0.5) positive = true;
        if (dos.m_center(bm) < -0.5) negative = true;
      }
  EXPECT_TRUE(positive);
  EXPECT_TRUE(negative);
}

TEST_F(ConvergedAnisotropicDimer, DosIsSymmetricUnderMagnetizationFlip) {
  // The Hamiltonian is even in M_z; ln g(E, M) = ln g(E, -M) up to
  // statistical error. Compare column sums of ln g.
  const JointDos& dos = sampler().dos();
  const std::size_t mid = dos.m_bins() / 2;
  for (std::size_t offset = 2; offset + 1 < mid; offset += 3) {
    double plus = 0.0;
    double minus = 0.0;
    std::size_t cells = 0;
    for (std::size_t be = 0; be < dos.e_bins(); ++be) {
      if (!dos.cell_visited(be, mid + offset) ||
          !dos.cell_visited(be, mid - offset))
        continue;
      plus += dos.cell_ln_g(be, mid + offset);
      minus += dos.cell_ln_g(be, mid - offset);
      ++cells;
    }
    if (cells < 4) continue;
    EXPECT_NEAR(plus / static_cast<double>(cells),
                minus / static_cast<double>(cells),
                2.5)
        << "offset=" << offset;
  }
}

TEST_F(ConvergedAnisotropicDimer, TracksMagnetizationIncrementally) {
  EXPECT_NEAR(sampler().configuration().magnetization_z(),
              sampler().configuration().magnetization_z(), 0.0);
  EXPECT_GT(sampler().stats().total_steps, 0u);
}

}  // namespace
}  // namespace wlsms::wl
