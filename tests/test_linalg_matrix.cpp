// Tests for the dense complex matrix container.
#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace wlsms::linalg {
namespace {

TEST(ZMatrix, ConstructedZero) {
  const ZMatrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_FALSE(m.square());
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_EQ(m(r, c), (Complex{0.0, 0.0}));
}

TEST(ZMatrix, IdentityFactory) {
  const ZMatrix eye = ZMatrix::identity(4);
  EXPECT_TRUE(eye.square());
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_EQ(eye(r, c), (Complex{r == c ? 1.0 : 0.0, 0.0}));
}

TEST(ZMatrix, ColumnMajorLayout) {
  ZMatrix m(2, 2);
  m(0, 0) = {1, 0};
  m(1, 0) = {2, 0};
  m(0, 1) = {3, 0};
  m(1, 1) = {4, 0};
  const Complex* d = m.data();
  EXPECT_EQ(d[0], (Complex{1, 0}));
  EXPECT_EQ(d[1], (Complex{2, 0}));  // same column, next row: adjacent
  EXPECT_EQ(d[2], (Complex{3, 0}));
  EXPECT_EQ(d[3], (Complex{4, 0}));
  EXPECT_EQ(m.col(1)[0], (Complex{3, 0}));
}

TEST(ZMatrix, SetZeroClears) {
  ZMatrix m = ZMatrix::identity(3);
  m.set_zero();
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 0.0);
}

TEST(ZMatrix, AxpyAccumulates) {
  ZMatrix a = ZMatrix::identity(2);
  const ZMatrix b = ZMatrix::identity(2);
  a.axpy(Complex{2.0, 1.0}, b);
  EXPECT_EQ(a(0, 0), (Complex{3.0, 1.0}));
  EXPECT_EQ(a(0, 1), (Complex{0.0, 0.0}));
}

TEST(ZMatrix, AxpyShapeMismatchThrows) {
  ZMatrix a(2, 2);
  const ZMatrix b(2, 3);
  EXPECT_THROW(a.axpy(Complex{1, 0}, b), ContractError);
}

TEST(ZMatrix, FrobeniusNorm) {
  ZMatrix m(1, 2);
  m(0, 0) = {3.0, 0.0};
  m(0, 1) = {0.0, 4.0};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(ZMatrix, MaxAbsDiff) {
  ZMatrix a = ZMatrix::identity(2);
  ZMatrix b = ZMatrix::identity(2);
  b(1, 0) = {0.0, 0.25};
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.25);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(a), 0.0);
}

TEST(ZMatrix, BlockExtraction) {
  ZMatrix m(4, 4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      m(r, c) = {static_cast<double>(10 * r + c), 0.0};
  const ZMatrix b = m.block(1, 2, 2);
  EXPECT_EQ(b(0, 0), (Complex{12.0, 0.0}));
  EXPECT_EQ(b(0, 1), (Complex{13.0, 0.0}));
  EXPECT_EQ(b(1, 0), (Complex{22.0, 0.0}));
  EXPECT_EQ(b(1, 1), (Complex{23.0, 0.0}));
}

TEST(ZMatrix, BlockOutOfRangeThrows) {
  const ZMatrix m(3, 3);
  EXPECT_THROW(m.block(2, 2, 2), ContractError);
}

}  // namespace
}  // namespace wlsms::linalg
