// The batched-GEMM seam under the serving scheduler: zgemm_view_batch must
// be bit-identical to issuing the same GEMMs one by one through zgemm_view
// (with any worker-thread count), the incremental BlockedLuStepper must
// reproduce the monolithic blocked factorization exactly, and the batched
// Schur solve must match the singleton path item for item — the arithmetic
// guarantees DESIGN.md §12's bit-identicality argument rests on.
#include "linalg/blas.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "lattice/structure.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "lsms/kkr.hpp"
#include "perf/flops.hpp"

namespace wlsms::linalg {
namespace {

std::vector<Complex> random_matrix(std::size_t rows, std::size_t cols,
                                   Rng& rng) {
  std::vector<Complex> m(rows * cols);
  for (Complex& v : m) v = Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  return m;
}

bool same_bits(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(Complex)) == 0;
}

TEST(LinalgBatch, BatchMatchesSequentialZgemmViewBitExactly) {
  Rng rng(301);
  for (int round = 0; round < 5; ++round) {
    const std::size_t count = 1 + rng.uniform_index(12);
    std::vector<std::size_t> ms, ns, ks;
    std::vector<std::vector<Complex>> as, bs, c_batch, c_loop;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t m = 1 + rng.uniform_index(48);
      const std::size_t n = 1 + rng.uniform_index(48);
      const std::size_t k = 1 + rng.uniform_index(48);
      ms.push_back(m);
      ns.push_back(n);
      ks.push_back(k);
      as.push_back(random_matrix(m, k, rng));
      bs.push_back(random_matrix(k, n, rng));
      c_batch.push_back(random_matrix(m, n, rng));
      c_loop.push_back(c_batch.back());
    }
    const Complex alpha(-1.0, 0.25);
    const Complex beta(0.5, -0.125);

    std::vector<ZgemmBatchItem> items(count);
    for (std::size_t i = 0; i < count; ++i) {
      items[i].m = ms[i];
      items[i].n = ns[i];
      items[i].k = ks[i];
      items[i].alpha = alpha;
      items[i].a = as[i].data();
      items[i].lda = ms[i];
      items[i].b = bs[i].data();
      items[i].ldb = ks[i];
      items[i].beta = beta;
      items[i].c = c_batch[i].data();
      items[i].ldc = ms[i];
    }
    zgemm_view_batch(items.data(), items.size());

    for (std::size_t i = 0; i < count; ++i)
      zgemm_view(ms[i], ns[i], ks[i], alpha, as[i].data(), ms[i],
                 bs[i].data(), ks[i], beta, c_loop[i].data(), ms[i]);

    for (std::size_t i = 0; i < count; ++i)
      EXPECT_TRUE(same_bits(c_batch[i], c_loop[i])) << "item " << i;
  }
}

TEST(LinalgBatch, WorkerThreadsDoNotChangeBits) {
  // The batch only parallelizes BETWEEN items; each item's serial kernel is
  // unchanged, so any thread count gives the same bytes.
  Rng rng(302);
  const std::size_t count = 9;
  std::vector<std::vector<Complex>> as, bs, c_serial, c_threaded;
  std::vector<ZgemmBatchItem> serial_items, threaded_items;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t n = 16 + 8 * i;
    as.push_back(random_matrix(n, n, rng));
    bs.push_back(random_matrix(n, n, rng));
    c_serial.push_back(random_matrix(n, n, rng));
    c_threaded.push_back(c_serial.back());
    ZgemmBatchItem item;
    item.m = item.n = item.k = n;
    item.alpha = Complex(-1.0, 0.0);
    item.a = as[i].data();
    item.lda = n;
    item.b = bs[i].data();
    item.ldb = n;
    item.beta = Complex(1.0, 0.0);
    item.ldc = n;
    serial_items.push_back(item);
    threaded_items.push_back(item);
    serial_items[i].c = c_serial[i].data();
    threaded_items[i].c = c_threaded[i].data();
  }

  const std::size_t saved = zgemm_batch_threads();
  set_zgemm_batch_threads(1);
  zgemm_view_batch(serial_items.data(), serial_items.size());
  set_zgemm_batch_threads(4);
  zgemm_view_batch(threaded_items.data(), threaded_items.size());
  set_zgemm_batch_threads(saved);

  for (std::size_t i = 0; i < count; ++i)
    EXPECT_TRUE(same_bits(c_serial[i], c_threaded[i])) << "item " << i;
}

TEST(LinalgBatch, BatchBooksSameFlopsAsSequential) {
  Rng rng(303);
  const std::size_t n = 40;
  std::vector<Complex> a = random_matrix(n, n, rng);
  std::vector<Complex> b = random_matrix(n, n, rng);
  std::vector<Complex> c1 = random_matrix(n, n, rng);
  std::vector<Complex> c2 = c1;

  const std::uint64_t before_loop = perf::thread_flops();
  zgemm_view(n, n, n, Complex(1.0, 0.0), a.data(), n, b.data(), n,
             Complex(0.0, 0.0), c1.data(), n);
  const std::uint64_t loop_flops = perf::thread_flops() - before_loop;

  ZgemmBatchItem item;
  item.m = item.n = item.k = n;
  item.alpha = Complex(1.0, 0.0);
  item.a = a.data();
  item.lda = n;
  item.b = b.data();
  item.ldb = n;
  item.beta = Complex(0.0, 0.0);
  item.c = c2.data();
  item.ldc = n;
  const std::uint64_t before_batch = perf::thread_flops();
  zgemm_view_batch(&item, 1);
  const std::uint64_t batch_flops = perf::thread_flops() - before_batch;

  EXPECT_GT(loop_flops, 0u);
  EXPECT_EQ(batch_flops, loop_flops);
}

TEST(LinalgBatch, EmptyAndDegenerateItemsAreSafe) {
  zgemm_view_batch(nullptr, 0);  // no-op

  Rng rng(304);
  std::vector<Complex> c = random_matrix(4, 4, rng);
  const std::vector<Complex> before = c;
  ZgemmBatchItem item;  // m == n == k == 0
  item.c = c.data();
  item.ldc = 4;
  zgemm_view_batch(&item, 1);
  EXPECT_TRUE(same_bits(c, before));
}

TEST(LinalgBatch, SteppedLuMatchesMonolithicBlockedFactorization) {
  Rng rng(305);
  for (const std::size_t n : {kLuBlockedThreshold, std::size_t{100}}) {
    ZMatrix reference(n, n);
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i)
        reference(i, j) = Complex(rng.uniform(-1.0, 1.0),
                                  rng.uniform(-1.0, 1.0)) +
                          (i == j ? Complex(4.0, 0.0) : Complex(0.0, 0.0));
    ZMatrix stepped = reference;

    std::vector<std::size_t> ref_pivots;
    const int ref_parity =
        zgetrf_in_place(reference, ref_pivots, LuAlgorithm::kBlocked);

    std::vector<std::size_t> pivots;
    BlockedLuStepper stepper(stepped, pivots);
    while (!stepper.done()) {
      const ZgemmBatchItem update = stepper.step();
      if (update.m != 0)
        zgemm_view(update.m, update.n, update.k, update.alpha, update.a,
                   update.lda, update.b, update.ldb, update.beta, update.c,
                   update.ldc);
    }

    EXPECT_EQ(stepper.parity(), ref_parity);
    EXPECT_EQ(pivots, ref_pivots);
    EXPECT_EQ(std::memcmp(stepped.data(), reference.data(),
                          n * n * sizeof(Complex)),
              0)
        << "order " << n;
  }
}

TEST(LinalgBatch, SchurBatchMatchesSingletonBitExactly) {
  // A real LIZ geometry big enough (2L >= kLuBlockedThreshold) that the
  // batch takes the lock-step elimination path, with randomized invertible
  // t^-1 blocks standing in for distinct walker configurations.
  const lattice::Structure structure = lattice::make_fe_supercell(3);
  const lsms::LizGeometry liz = lsms::build_liz(structure, 0, 9.1);
  ASSERT_GE(2 * liz.members.size(), kLuBlockedThreshold);
  const Complex z(0.65, 0.05);
  const linalg::ZMatrix propagator =
      lsms::scalar_propagator_matrix(liz, z);
  const lsms::SchurTemplates templates =
      lsms::make_schur_templates(propagator, 0.8);

  Rng rng(306);
  const std::size_t count = 7;
  const std::size_t members = liz.members.size();
  const auto random_spin = [&rng]() {
    spin::Spin2x2 t;
    t[0] = Complex(3.0 + rng.uniform(-0.5, 0.5), rng.uniform(-0.2, 0.2));
    t[1] = Complex(rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3));
    t[2] = Complex(rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3));
    t[3] = Complex(3.0 + rng.uniform(-0.5, 0.5), rng.uniform(-0.2, 0.2));
    return t;
  };
  std::vector<spin::Spin2x2> centers(count);
  std::vector<std::vector<spin::Spin2x2>> member_tables(count);
  for (std::size_t i = 0; i < count; ++i) {
    centers[i] = random_spin();
    member_tables[i].resize(members);
    for (spin::Spin2x2& t : member_tables[i]) t = random_spin();
  }

  std::vector<spin::Spin2x2> batched(count), singleton(count);
  std::vector<lsms::SchurBatchItem> items(count);
  for (std::size_t i = 0; i < count; ++i) {
    items[i].center_t_inverse = &centers[i];
    items[i].member_t_inverse = member_tables[i].data();
    items[i].tau = &batched[i];
  }
  // The batch falls back to per-item singleton solves when there is only
  // one GEMM worker (nothing to parallelize between items); pin two workers
  // so this test exercises the lock-step elimination path itself.
  std::vector<lsms::SchurWorkspace> workspaces;
  const std::size_t saved_threads = zgemm_batch_threads();
  set_zgemm_batch_threads(2);
  lsms::central_tau_schur_batch(templates, items.data(), count, workspaces);
  set_zgemm_batch_threads(saved_threads);

  lsms::SchurWorkspace workspace;
  for (std::size_t i = 0; i < count; ++i)
    singleton[i] = lsms::central_tau_schur(templates, centers[i],
                                           member_tables[i].data(), workspace);

  for (std::size_t i = 0; i < count; ++i)
    EXPECT_EQ(std::memcmp(batched[i].data(), singleton[i].data(),
                          sizeof(spin::Spin2x2)),
              0)
        << "item " << i;
}

}  // namespace
}  // namespace wlsms::linalg
