// Tests for the multiple-master extension (paper §V outlook).
#include "wl/multimaster.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "common/units.hpp"
#include "heisenberg/heisenberg.hpp"
#include "lattice/cluster.hpp"
#include "thermo/observables.hpp"

namespace wlsms::wl {
namespace {

TEST(MergeDos, AveragesOverContributors) {
  DosGridConfig grid{0.0, 1.0, 10, 0.05};
  DosGrid a(grid);
  DosGrid b(grid);
  a.set_ln_g_values({2, 2, 2, 0, 0, 0, 0, 0, 0, 0});
  a.set_visited({1, 1, 1, 0, 0, 0, 0, 0, 0, 0});
  b.set_ln_g_values({4, 0, 4, 4, 0, 0, 0, 0, 0, 0});
  b.set_visited({1, 0, 1, 1, 0, 0, 0, 0, 0, 0});

  const DosGrid merged = merge_dos_estimates({&a, &b});
  EXPECT_DOUBLE_EQ(merged.ln_g_values()[0], 3.0);  // both visited
  EXPECT_DOUBLE_EQ(merged.ln_g_values()[1], 2.0);  // only a
  EXPECT_DOUBLE_EQ(merged.ln_g_values()[3], 4.0);  // only b
  EXPECT_DOUBLE_EQ(merged.ln_g_values()[5], 0.0);  // neither
  EXPECT_EQ(merged.visited()[0], 1);
  EXPECT_EQ(merged.visited()[5], 0);
}

TEST(MergeDos, SingleEstimateIsIdentity) {
  DosGridConfig grid{0.0, 1.0, 5, 0.05};
  DosGrid a(grid);
  a.set_ln_g_values({1, 2, 3, 4, 5});
  a.set_visited({1, 1, 1, 1, 1});
  const DosGrid merged = merge_dos_estimates({&a});
  EXPECT_EQ(merged.ln_g_values(), a.ln_g_values());
}

TEST(MergeDos, EmptyListThrows) {
  EXPECT_THROW(merge_dos_estimates({}), ContractError);
}

// Property: merging K identical copies of an estimate returns that estimate.
TEST(MergeDos, KIdenticalCopiesAreIdentity) {
  const DosGridConfig grid{-1.0, 2.0, 24, 0.01};
  Rng rng(101);
  DosGrid a(grid);
  std::vector<double> values(grid.bins, 0.0);
  std::vector<std::uint8_t> visited(grid.bins, 0);
  for (std::size_t b = 0; b < grid.bins; ++b) {
    visited[b] = rng.uniform() < 0.7 ? 1 : 0;
    if (visited[b]) values[b] = 10.0 * rng.uniform();
  }
  a.set_ln_g_values(values);
  a.set_visited(visited);

  for (std::size_t k : {2u, 3u, 7u}) {
    const std::vector<const DosGrid*> copies(k, &a);
    const DosGrid merged = merge_dos_estimates(copies);
    // The k-fold mean of identical values is identical up to summation
    // rounding (exact for powers of two, ~1 ulp otherwise).
    for (std::size_t b = 0; b < grid.bins; ++b)
      EXPECT_NEAR(merged.ln_g_values()[b], a.ln_g_values()[b], 1e-13)
          << "k=" << k << " bin=" << b;
    EXPECT_EQ(merged.visited(), a.visited()) << "k=" << k;
  }
}

// Property: the merge is invariant under permutations of the estimate list.
TEST(MergeDos, PermutationInvariant) {
  const DosGridConfig grid{0.0, 1.0, 16, 0.02};
  Rng rng(102);
  std::vector<DosGrid> masters;
  for (int m = 0; m < 4; ++m) {
    DosGrid dos(grid);
    std::vector<double> values(grid.bins, 0.0);
    std::vector<std::uint8_t> visited(grid.bins, 0);
    for (std::size_t b = 0; b < grid.bins; ++b) {
      visited[b] = rng.uniform() < 0.6 ? 1 : 0;
      if (visited[b]) values[b] = 5.0 * rng.uniform();
    }
    dos.set_ln_g_values(values);
    dos.set_visited(visited);
    masters.push_back(std::move(dos));
  }

  const DosGrid reference =
      merge_dos_estimates({&masters[0], &masters[1], &masters[2], &masters[3]});
  const std::vector<std::vector<std::size_t>> permutations = {
      {1, 0, 2, 3}, {3, 2, 1, 0}, {2, 3, 0, 1}, {1, 3, 0, 2}};
  for (const auto& permutation : permutations) {
    std::vector<const DosGrid*> order;
    for (std::size_t index : permutation) order.push_back(&masters[index]);
    const DosGrid merged = merge_dos_estimates(order);
    for (std::size_t b = 0; b < grid.bins; ++b)
      EXPECT_NEAR(merged.ln_g_values()[b], reference.ln_g_values()[b], 1e-12);
    EXPECT_EQ(merged.visited(), reference.visited());
  }
}

// Property: a bin visited by no master stays exactly zero and unvisited —
// the merge must not invent density where no walk has been.
TEST(MergeDos, BinsVisitedByNoMasterStayZero) {
  const DosGridConfig grid{0.0, 1.0, 12, 0.02};
  DosGrid a(grid);
  DosGrid b(grid);
  // Both masters leave bins 4..7 untouched.
  a.set_ln_g_values({1, 2, 3, 4, 0, 0, 0, 0, 9, 9, 0, 0});
  a.set_visited({1, 1, 1, 1, 0, 0, 0, 0, 1, 1, 0, 0});
  b.set_ln_g_values({2, 3, 0, 0, 0, 0, 0, 0, 7, 7, 5, 5});
  b.set_visited({1, 1, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1});
  const DosGrid merged = merge_dos_estimates({&a, &b});
  for (std::size_t bin = 4; bin < 8; ++bin) {
    EXPECT_EQ(merged.visited()[bin], 0) << "bin " << bin;
    EXPECT_DOUBLE_EQ(merged.ln_g_values()[bin], 0.0) << "bin " << bin;
  }
  // ...while union coverage is preserved everywhere else.
  for (std::size_t bin : {0u, 1u, 2u, 3u, 8u, 9u, 10u, 11u})
    EXPECT_EQ(merged.visited()[bin], 1) << "bin " << bin;
}

double langevin(double x) { return 1.0 / std::tanh(x) - 1.0 / x; }

TEST(MultiMaster, ConvergesToSingleBondExactResult) {
  // Two masters with two walkers each on the exactly solvable single bond;
  // the merged DOS must reproduce the Langevin internal energy.
  const auto structure = lattice::make_cubic_cluster(
      lattice::CubicLattice::kSimpleCubic, 1.0, 2, 1, 1);
  const HeisenbergEnergy energy(
      heisenberg::HeisenbergModel(structure, {1.0}));

  WangLandauConfig per_master;
  per_master.grid = {-1.02, 1.02, 102, 0.005};
  per_master.n_walkers = 2;
  per_master.check_interval = 2000;
  per_master.flatness = 0.8;
  per_master.max_iteration_steps = 300000;
  per_master.max_steps = 40000000;

  const MultiMasterResult result =
      run_multimaster(energy, per_master, 2, 1e-4, Rng(17));

  EXPECT_EQ(result.gamma_levels, 14u);  // 2^-14 <= 1e-4
  ASSERT_EQ(result.per_master.size(), 2u);
  for (const WangLandauStats& stats : result.per_master)
    EXPECT_GT(stats.total_steps, 0u);

  const thermo::DosTable table = thermo::dos_table(result.merged_dos);
  const double t = 1.0 / (units::k_boltzmann_ry * 1.0);
  EXPECT_NEAR(thermo::observables_at(table, t).internal_energy,
              -langevin(1.0), 0.03);
}

TEST(MultiMaster, FourMastersStillConverge) {
  const auto structure = lattice::make_cubic_cluster(
      lattice::CubicLattice::kSimpleCubic, 1.0, 2, 1, 1);
  const HeisenbergEnergy energy(
      heisenberg::HeisenbergModel(structure, {1.0}));

  WangLandauConfig per_master;
  per_master.grid = {-1.02, 1.02, 102, 0.005};
  per_master.n_walkers = 1;
  per_master.check_interval = 2000;
  per_master.flatness = 0.8;
  per_master.max_iteration_steps = 200000;
  per_master.max_steps = 40000000;

  const MultiMasterResult result =
      run_multimaster(energy, per_master, 4, 1e-3, Rng(18));
  const thermo::DosTable table = thermo::dos_table(result.merged_dos);
  const double t = 1.0 / (units::k_boltzmann_ry * 2.0);
  EXPECT_NEAR(thermo::observables_at(table, t).internal_energy,
              -langevin(2.0), 0.05);
}

TEST(MultiMaster, InvalidArgumentsThrow) {
  const auto structure = lattice::make_cubic_cluster(
      lattice::CubicLattice::kSimpleCubic, 1.0, 2, 1, 1);
  const HeisenbergEnergy energy(
      heisenberg::HeisenbergModel(structure, {1.0}));
  WangLandauConfig per_master;
  per_master.grid = {-1.02, 1.02, 20, 0.02};
  EXPECT_THROW(run_multimaster(energy, per_master, 0, 1e-3, Rng(1)),
               ContractError);
  EXPECT_THROW(run_multimaster(energy, per_master, 2, 2.0, Rng(1)),
               ContractError);
}

}  // namespace
}  // namespace wlsms::wl
