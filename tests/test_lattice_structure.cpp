// Geometry tests: supercells, periodic images, neighbour shells, and the
// paper's LIZ size (65 atoms at 11.5 a0 on bcc Fe).
#include "lattice/structure.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "common/units.hpp"
#include "lattice/shells.hpp"

namespace wlsms::lattice {
namespace {

TEST(Supercell, AtomCounts) {
  EXPECT_EQ(make_supercell(CubicLattice::kSimpleCubic, 1.0, 3, 3, 3).size(),
            27u);
  EXPECT_EQ(make_supercell(CubicLattice::kBcc, 1.0, 2, 2, 2).size(), 16u);
  EXPECT_EQ(make_supercell(CubicLattice::kFcc, 1.0, 2, 2, 2).size(), 32u);
}

TEST(Supercell, PaperCellSizes) {
  // The paper simulates 16, 250, and 1024 bcc Fe atoms (2^3, 5^3, 8^3 cells).
  EXPECT_EQ(make_fe_supercell(2).size(), 16u);
  EXPECT_EQ(make_fe_supercell(5).size(), 250u);
  EXPECT_EQ(make_fe_supercell(8).size(), 1024u);
}

TEST(Supercell, BasisSizes) {
  EXPECT_EQ(basis_size(CubicLattice::kSimpleCubic), 1u);
  EXPECT_EQ(basis_size(CubicLattice::kBcc), 2u);
  EXPECT_EQ(basis_size(CubicLattice::kFcc), 4u);
}

TEST(Structure, MinimumImageDistance) {
  // Two atoms near opposite faces of the box are close through the boundary.
  Structure s = Structure::periodic({{0.5, 5.0, 5.0}, {9.5, 5.0, 5.0}},
                                    {10.0, 10.0, 10.0});
  EXPECT_NEAR(s.distance(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(s.displacement(0, 1).x, -1.0, 1e-12);
}

TEST(Structure, FinitePlainDistance) {
  Structure s = Structure::finite({{0, 0, 0}, {9.5, 0, 0}});
  EXPECT_NEAR(s.distance(0, 1), 9.5, 1e-12);
}

TEST(Structure, PositionsWrappedIntoBox) {
  Structure s =
      Structure::periodic({{-1.0, 12.0, 3.0}}, {10.0, 10.0, 10.0});
  EXPECT_NEAR(s.position(0).x, 9.0, 1e-12);
  EXPECT_NEAR(s.position(0).y, 2.0, 1e-12);
  EXPECT_NEAR(s.position(0).z, 3.0, 1e-12);
}

TEST(Structure, BccNearestNeighborGeometry) {
  const Structure s = make_supercell(CubicLattice::kBcc, 2.0, 3, 3, 3);
  const auto nn = s.neighbors_within(0, 1.01 * 2.0 * std::sqrt(3.0) / 2.0);
  ASSERT_EQ(nn.size(), 8u);  // bcc coordination
  for (const Neighbor& n : nn)
    EXPECT_NEAR(n.distance, std::sqrt(3.0), 1e-10);
}

TEST(Structure, NeighborsSortedByDistance) {
  const Structure s = make_supercell(CubicLattice::kBcc, 1.0, 3, 3, 3);
  const auto neighbors = s.neighbors_within(0, 2.5);
  for (std::size_t i = 1; i < neighbors.size(); ++i)
    EXPECT_LE(neighbors[i - 1].distance, neighbors[i].distance);
}

TEST(Structure, NeighborsIncludePeriodicImagesBeyondBox) {
  // A single-cell sc crystal: every neighbour is an image of atom 0 itself.
  const Structure s = make_supercell(CubicLattice::kSimpleCubic, 1.0, 1, 1, 1);
  const auto neighbors = s.neighbors_within(0, 1.1);
  EXPECT_EQ(neighbors.size(), 6u);
  for (const Neighbor& n : neighbors) EXPECT_EQ(n.site, 0u);
}

TEST(Structure, PaperLizContains65Atoms) {
  // §III: "the local interaction zone has a radius of 11.5 a0, including 65
  // atoms" for bcc Fe at a = 5.42 a0 (64 neighbours + the centre).
  const Structure fe = make_fe_supercell(2);
  const auto liz = fe.neighbors_within(0, units::fe_liz_radius_a0);
  EXPECT_EQ(liz.size() + 1, 65u);
}

TEST(Shells, BccCoordinationSequence) {
  // bcc shells: 8 (sqrt3/2 a), 6 (a), 12 (sqrt2 a), 24 (sqrt11/2 a), 8
  // (sqrt3 a), 6 (2a).
  const Structure fe = make_fe_supercell(3);
  const auto coordinations =
      shell_coordinations(fe, 0, 2.01 * units::fe_lattice_parameter_a0);
  ASSERT_GE(coordinations.size(), 6u);
  EXPECT_EQ(coordinations[0], 8u);
  EXPECT_EQ(coordinations[1], 6u);
  EXPECT_EQ(coordinations[2], 12u);
  EXPECT_EQ(coordinations[3], 24u);
  EXPECT_EQ(coordinations[4], 8u);
  EXPECT_EQ(coordinations[5], 6u);
}

TEST(Shells, FccFirstShellIs12) {
  const Structure fcc = make_supercell(CubicLattice::kFcc, 1.0, 3, 3, 3);
  const auto coordinations = shell_coordinations(fcc, 0, 1.05);
  ASSERT_GE(coordinations.size(), 2u);
  EXPECT_EQ(coordinations[0], 12u);
  EXPECT_EQ(coordinations[1], 6u);
}

TEST(Shells, RadiiMatchBccGeometry) {
  const double a = units::fe_lattice_parameter_a0;
  const Structure fe = make_fe_supercell(3);
  const auto shells = neighbor_shells(fe, 0, 1.5 * a);
  ASSERT_GE(shells.size(), 2u);
  EXPECT_NEAR(shells[0].radius, a * std::sqrt(3.0) / 2.0, 1e-9);
  EXPECT_NEAR(shells[1].radius, a, 1e-9);
}

TEST(Shells, AllSitesOfPerfectCrystalAreEquivalent) {
  const Structure fe = make_fe_supercell(2);
  const auto reference = shell_coordinations(fe, 0, 12.0);
  for (std::size_t i = 1; i < fe.size(); ++i)
    EXPECT_EQ(shell_coordinations(fe, i, 12.0), reference);
}

TEST(Structure, ContractViolations) {
  const Structure s = make_fe_supercell(2);
  EXPECT_THROW(s.neighbors_within(999, 1.0), ContractError);
  EXPECT_THROW(s.neighbors_within(0, -1.0), ContractError);
  EXPECT_THROW(Structure::periodic({{0, 0, 0}}, {0.0, 1.0, 1.0}),
               ContractError);
  EXPECT_THROW(Structure::finite({}), ContractError);
}

}  // namespace
}  // namespace wlsms::lattice
