// Metrics registry: identity, exactness under concurrent hammering, and
// histogram bucket-boundary semantics. Runs under the `sanitize` label so
// the tsan preset exercises the thread-local shard machinery.
#include <cmath>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace wlsms::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::instance().reset_values_for_testing(); }
};

TEST_F(MetricsTest, SameNameReturnsSameObject) {
  Counter& a = Registry::instance().counter("test.identity");
  Counter& b = Registry::instance().counter("test.identity");
  EXPECT_EQ(&a, &b);

  Gauge& ga = Registry::instance().gauge("test.identity.gauge");
  Gauge& gb = Registry::instance().gauge("test.identity.gauge");
  EXPECT_EQ(&ga, &gb);

  Histogram& ha = Registry::instance().histogram("test.identity.h", {1.0, 2.0});
  Histogram& hb = Registry::instance().histogram("test.identity.h", {1.0, 2.0});
  EXPECT_EQ(&ha, &hb);
}

TEST_F(MetricsTest, HistogramBoundsMismatchThrows) {
  Registry::instance().histogram("test.bounds.fixed", {1.0, 10.0});
  EXPECT_THROW(Registry::instance().histogram("test.bounds.fixed", {1.0, 5.0}),
               Error);
  EXPECT_THROW(Registry::instance().histogram("test.bounds.bad", {}), Error);
  EXPECT_THROW(Registry::instance().histogram("test.bounds.bad2", {2.0, 1.0}),
               Error);
}

TEST_F(MetricsTest, CounterConcurrentHammeringIsExact) {
  Counter& counter = Registry::instance().counter("test.hammer.counter");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kOpsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) counter.inc();
    });
  for (std::thread& thread : threads) thread.join();
  // All writers quiescent: the aggregate is the exact sum of every add.
  EXPECT_EQ(counter.value(), kThreads * kOpsPerThread);
}

TEST_F(MetricsTest, HistogramConcurrentSnapshotMatchesSum) {
  Histogram& histogram = Registry::instance().histogram(
      "test.hammer.histogram", {1.0, 2.0, 4.0, 8.0});
  constexpr std::size_t kThreads = 6;
  constexpr std::uint64_t kOpsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&histogram, t] {
      // Integer-valued observations so the expected `sum` is exact in
      // floating point regardless of accumulation order.
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i)
        histogram.observe(static_cast<double>((t + i) % 10));
    });
  for (std::thread& thread : threads) thread.join();

  const HistogramSnapshot snap = histogram.snapshot_values();
  EXPECT_EQ(snap.total, kThreads * kOpsPerThread);
  std::uint64_t bucket_sum = 0;
  for (std::uint64_t c : snap.counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, snap.total);

  double expected_sum = 0.0;
  for (std::size_t t = 0; t < kThreads; ++t)
    for (std::uint64_t i = 0; i < kOpsPerThread; ++i)
      expected_sum += static_cast<double>((t + i) % 10);
  EXPECT_EQ(snap.sum, expected_sum);
}

TEST_F(MetricsTest, HistogramBucketBoundaryEdgeCases) {
  Histogram& histogram =
      Registry::instance().histogram("test.buckets", {1.0, 10.0, 100.0});

  // "le" semantics: a value exactly on a bound belongs to that bucket.
  histogram.observe(1.0);    // bucket 0 (v <= 1)
  histogram.observe(10.0);   // bucket 1 (v <= 10)
  histogram.observe(100.0);  // bucket 2 (v <= 100)
  // Strictly inside.
  histogram.observe(0.5);   // bucket 0
  histogram.observe(1.5);   // bucket 1
  // Above the last bound and NaN: overflow bucket.
  histogram.observe(100.000001);
  histogram.observe(std::numeric_limits<double>::infinity());
  histogram.observe(std::nan(""));
  // Negative values fall into the first bucket.
  histogram.observe(-3.0);

  const HistogramSnapshot snap = histogram.snapshot_values();
  ASSERT_EQ(snap.upper_bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 3u);  // 1.0, 0.5, -3.0
  EXPECT_EQ(snap.counts[1], 2u);  // 10.0, 1.5
  EXPECT_EQ(snap.counts[2], 1u);  // 100.0
  EXPECT_EQ(snap.counts[3], 3u);  // 100.000001, inf, nan
  EXPECT_EQ(snap.total, 9u);
  // NaN is counted but excluded from the value sum; inf would poison it
  // too, so `sum` only accumulates finite observations.
  EXPECT_TRUE(std::isfinite(snap.sum));
}

TEST_F(MetricsTest, GaugeLastWriterWins) {
  Gauge& gauge = Registry::instance().gauge("test.gauge");
  gauge.set(0.25);
  gauge.set(0.75);
  EXPECT_EQ(gauge.value(), 0.75);
}

TEST_F(MetricsTest, SnapshotAggregatesEveryKind) {
  Registry::instance().counter("test.snap.counter").add(7);
  Registry::instance().gauge("test.snap.gauge").set(3.5);
  Registry::instance().histogram("test.snap.h", {1.0}).observe(0.5);

  const MetricsSnapshot snap = Registry::instance().snapshot();
  ASSERT_TRUE(snap.counters.count("test.snap.counter"));
  EXPECT_EQ(snap.counters.at("test.snap.counter"), 7u);
  ASSERT_TRUE(snap.gauges.count("test.snap.gauge"));
  EXPECT_EQ(snap.gauges.at("test.snap.gauge"), 3.5);
  ASSERT_TRUE(snap.histograms.count("test.snap.h"));
  EXPECT_EQ(snap.histograms.at("test.snap.h").total, 1u);
}

TEST_F(MetricsTest, ResetZeroesValuesButKeepsIdentity) {
  Counter& counter = Registry::instance().counter("test.reset.counter");
  Histogram& histogram = Registry::instance().histogram("test.reset.h", {1.0});
  counter.add(5);
  histogram.observe(0.5);
  Registry::instance().gauge("test.reset.gauge").set(2.0);

  Registry::instance().reset_values_for_testing();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(histogram.snapshot_values().total, 0u);
  EXPECT_EQ(Registry::instance().gauge("test.reset.gauge").value(), 0.0);
  // Identity survives the reset: same name, same object, counts resume.
  EXPECT_EQ(&counter, &Registry::instance().counter("test.reset.counter"));
  counter.inc();
  EXPECT_EQ(counter.value(), 1u);
}

TEST_F(MetricsTest, ConcurrentRegistrationIsSafe) {
  // Threads race to create and hammer the same names: registration must
  // hand every thread the same object and lose no operation.
  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < 1000; ++i) {
        Registry::instance().counter("test.race.counter").inc();
        Registry::instance().histogram("test.race.h", {1.0, 2.0}).observe(1.5);
      }
    });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(Registry::instance().counter("test.race.counter").value(),
            kThreads * 1000u);
  EXPECT_EQ(Registry::instance()
                .histogram("test.race.h", {1.0, 2.0})
                .snapshot_values()
                .total,
            kThreads * 1000u);
}

}  // namespace
}  // namespace wlsms::obs
