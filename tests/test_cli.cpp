// Tests for the wlsms command-line option parser.
#include "cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace wlsms::cli {
namespace {

Options parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "wlsms");
  return Options::parse(static_cast<int>(argv.size()),
                        const_cast<char**>(argv.data()));
}

TEST(Cli, ParsesCommandAndOptions) {
  const Options options =
      parse({"curie", "--cells", "5", "--gamma-final", "1e-6"});
  EXPECT_EQ(options.command(), "curie");
  EXPECT_EQ(options.get_long("cells", 0), 5);
  EXPECT_DOUBLE_EQ(options.get_double("gamma-final", 0.0), 1e-6);
}

TEST(Cli, EmptyArgvGivesEmptyCommand) {
  const Options options = parse({});
  EXPECT_TRUE(options.empty_command());
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  const Options options = parse({"thermo"});
  EXPECT_EQ(options.get_string("dos", "fallback.csv"), "fallback.csv");
  EXPECT_DOUBLE_EQ(options.get_double("tmin", 200.0), 200.0);
  EXPECT_EQ(options.get_long("points", 15), 15);
  EXPECT_FALSE(options.has("dos"));
}

TEST(Cli, StringValuesPassThrough) {
  const Options options = parse({"thermo", "--dos", "my dos.csv"});
  EXPECT_EQ(options.get_string("dos", ""), "my dos.csv");
  EXPECT_TRUE(options.has("dos"));
}

TEST(Cli, RejectsBareToken) {
  EXPECT_THROW(parse({"curie", "cells", "5"}), std::runtime_error);
}

TEST(Cli, RejectsMissingValue) {
  EXPECT_THROW(parse({"curie", "--cells"}), std::runtime_error);
}

TEST(Cli, RejectsNonNumericNumber) {
  const Options options = parse({"curie", "--cells", "five"});
  EXPECT_THROW(options.get_long("cells", 0), std::runtime_error);
}

TEST(Cli, RejectsTrailingGarbageInNumber) {
  const Options options = parse({"curie", "--tmin", "150K"});
  EXPECT_THROW(options.get_double("tmin", 0.0), std::runtime_error);
}

TEST(Cli, NegativeNumbersParse) {
  const Options options = parse({"x", "--shift", "-3.5"});
  EXPECT_DOUBLE_EQ(options.get_double("shift", 0.0), -3.5);
}

TEST(Cli, U64ParsesFullRange) {
  // Resume tokens are raw 64-bit values; about half of them exceed
  // INT64_MAX, which get_long rejects — get_u64 must take the full range.
  const Options options =
      parse({"client", "--resume-token", "18446744073709551615"});
  EXPECT_EQ(options.get_u64("resume-token", 0), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(options.get_u64("resume-session", 7), 7u);
}

TEST(Cli, U64RejectsNegativeOverflowAndGarbage) {
  EXPECT_THROW(parse({"x", "--t", "-1"}).get_u64("t", 0), std::runtime_error);
  EXPECT_THROW(parse({"x", "--t", "18446744073709551616"}).get_u64("t", 0),
               std::runtime_error);
  EXPECT_THROW(parse({"x", "--t", "12abc"}).get_u64("t", 0),
               std::runtime_error);
}

TEST(Cli, UnusedKeysReported) {
  const Options options = parse({"curie", "--cells", "2", "--typo", "1"});
  (void)options.get_long("cells", 0);
  const std::vector<std::string> unused = options.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, QueriedKeysNotReported) {
  const Options options = parse({"curie", "--cells", "2"});
  (void)options.get_long("cells", 0);
  EXPECT_TRUE(options.unused_keys().empty());
}

TEST(Cli, LastDuplicateWins) {
  const Options options = parse({"x", "--n", "1", "--n", "2"});
  EXPECT_EQ(options.get_long("n", 0), 2);
}

}  // namespace
}  // namespace wlsms::cli
