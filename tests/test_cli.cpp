// Tests for the wlsms command-line option parser and the typed
// per-subcommand option structs built on top of it.
#include "cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "options.hpp"

namespace wlsms::cli {
namespace {

Options parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "wlsms");
  return Options::parse(static_cast<int>(argv.size()),
                        const_cast<char**>(argv.data()));
}

TEST(Cli, ParsesCommandAndOptions) {
  const Options options =
      parse({"curie", "--cells", "5", "--gamma-final", "1e-6"});
  EXPECT_EQ(options.command(), "curie");
  EXPECT_EQ(options.get_long("cells", 0), 5);
  EXPECT_DOUBLE_EQ(options.get_double("gamma-final", 0.0), 1e-6);
}

TEST(Cli, EmptyArgvGivesEmptyCommand) {
  const Options options = parse({});
  EXPECT_TRUE(options.empty_command());
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  const Options options = parse({"thermo"});
  EXPECT_EQ(options.get_string("dos", "fallback.csv"), "fallback.csv");
  EXPECT_DOUBLE_EQ(options.get_double("tmin", 200.0), 200.0);
  EXPECT_EQ(options.get_long("points", 15), 15);
  EXPECT_FALSE(options.has("dos"));
}

TEST(Cli, StringValuesPassThrough) {
  const Options options = parse({"thermo", "--dos", "my dos.csv"});
  EXPECT_EQ(options.get_string("dos", ""), "my dos.csv");
  EXPECT_TRUE(options.has("dos"));
}

TEST(Cli, RejectsBareToken) {
  EXPECT_THROW(parse({"curie", "cells", "5"}), std::runtime_error);
}

TEST(Cli, RejectsMissingValue) {
  EXPECT_THROW(parse({"curie", "--cells"}), std::runtime_error);
}

TEST(Cli, RejectsNonNumericNumber) {
  const Options options = parse({"curie", "--cells", "five"});
  EXPECT_THROW(options.get_long("cells", 0), std::runtime_error);
}

TEST(Cli, RejectsTrailingGarbageInNumber) {
  const Options options = parse({"curie", "--tmin", "150K"});
  EXPECT_THROW(options.get_double("tmin", 0.0), std::runtime_error);
}

TEST(Cli, NegativeNumbersParse) {
  const Options options = parse({"x", "--shift", "-3.5"});
  EXPECT_DOUBLE_EQ(options.get_double("shift", 0.0), -3.5);
}

TEST(Cli, U64ParsesFullRange) {
  // Resume tokens are raw 64-bit values; about half of them exceed
  // INT64_MAX, which get_long rejects — get_u64 must take the full range.
  const Options options =
      parse({"client", "--resume-token", "18446744073709551615"});
  EXPECT_EQ(options.get_u64("resume-token", 0), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(options.get_u64("resume-session", 7), 7u);
}

TEST(Cli, U64RejectsNegativeOverflowAndGarbage) {
  EXPECT_THROW(parse({"x", "--t", "-1"}).get_u64("t", 0), std::runtime_error);
  EXPECT_THROW(parse({"x", "--t", "18446744073709551616"}).get_u64("t", 0),
               std::runtime_error);
  EXPECT_THROW(parse({"x", "--t", "12abc"}).get_u64("t", 0),
               std::runtime_error);
}

TEST(Cli, UnusedKeysReported) {
  const Options options = parse({"curie", "--cells", "2", "--typo", "1"});
  (void)options.get_long("cells", 0);
  const std::vector<std::string> unused = options.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, QueriedKeysNotReported) {
  const Options options = parse({"curie", "--cells", "2"});
  (void)options.get_long("cells", 0);
  EXPECT_TRUE(options.unused_keys().empty());
}

TEST(Cli, LastDuplicateWins) {
  const Options options = parse({"x", "--n", "1", "--n", "2"});
  EXPECT_EQ(options.get_long("n", 0), 2);
}

TEST(Cli, DoubleParsesScientificNotation) {
  EXPECT_DOUBLE_EQ(parse({"x", "--v", "1e-3"}).get_double("v", 0.0), 1e-3);
  EXPECT_DOUBLE_EQ(parse({"x", "--v", "-3.5e2"}).get_double("v", 0.0), -350.0);
}

TEST(Cli, DoubleRejectsOverflowWhitespaceHexAndLoneSign) {
  // std::stod would half-accept every one of these: "1e999" returns inf or
  // throws late, " 1.5" skips the space, "0x10" parses as hex, and a lone
  // "-" used to slip through partial parses. get_double fails loudly.
  EXPECT_THROW(parse({"x", "--v", "1e999"}).get_double("v", 0.0),
               std::runtime_error);
  EXPECT_THROW(parse({"x", "--v", " 1.5"}).get_double("v", 0.0),
               std::runtime_error);
  EXPECT_THROW(parse({"x", "--v", "0x10"}).get_double("v", 0.0),
               std::runtime_error);
  EXPECT_THROW(parse({"x", "--v", "-"}).get_double("v", 0.0),
               std::runtime_error);
  EXPECT_THROW(parse({"x", "--v", ""}).get_double("v", 0.0),
               std::runtime_error);
  EXPECT_THROW(parse({"x", "--v", "1.5.2"}).get_double("v", 0.0),
               std::runtime_error);
}

// --- Typed per-subcommand structs: parse once, validate once --------------

TEST(CliOptions, SpeculateDefaultsAndOverrides) {
  const SpeculateOptions defaults = SpeculateOptions::parse(parse({"x"}));
  EXPECT_FALSE(defaults.enabled);
  EXPECT_DOUBLE_EQ(defaults.band, 2.0);
  EXPECT_DOUBLE_EQ(defaults.audit_fraction, 0.05);

  const SpeculateOptions set = SpeculateOptions::parse(
      parse({"x", "--speculate", "1", "--spec-band", "1.5", "--spec-audit-frac",
             "0.2", "--spec-refit-interval", "128", "--spec-budget", "1e-3"}));
  EXPECT_TRUE(set.enabled);
  EXPECT_DOUBLE_EQ(set.band, 1.5);
  EXPECT_DOUBLE_EQ(set.audit_fraction, 0.2);
  EXPECT_EQ(set.refit_interval, 128u);
  EXPECT_DOUBLE_EQ(set.error_budget, 1e-3);
}

TEST(CliOptions, SpeculateValidatesRanges) {
  EXPECT_THROW(SpeculateOptions::parse(parse({"x", "--spec-band", "-1"})),
               std::runtime_error);
  EXPECT_THROW(
      SpeculateOptions::parse(parse({"x", "--spec-audit-frac", "1.5"})),
      std::runtime_error);
  EXPECT_THROW(SpeculateOptions::parse(parse({"x", "--spec-budget", "-1e-3"})),
               std::runtime_error);
}

TEST(CliOptions, DistributedSpeculationNeedsAWlDriver) {
  // The screen sits in front of a WL driver's accept boundary; a bare
  // evaluation sweep has nothing to screen.
  EXPECT_THROW(
      DistributedOptions::parse(parse({"distributed", "--speculate", "1"})),
      std::runtime_error);
  const DistributedOptions ok = DistributedOptions::parse(parse(
      {"distributed", "--speculate", "1", "--wl-steps", "100"}));
  EXPECT_TRUE(ok.speculate.enabled);
  EXPECT_EQ(ok.wl_steps, 100u);
}

TEST(CliOptions, RequiredStringsAreEnforced) {
  EXPECT_THROW(ThermoOptions::parse(parse({"thermo"})), std::runtime_error);
  EXPECT_THROW(WorkerOptions::parse(parse({"worker"})), std::runtime_error);
  EXPECT_THROW(ClientOptions::parse(parse({"client"})), std::runtime_error);
  const ClientOptions client = ClientOptions::parse(
      parse({"client", "--connect", "127.0.0.1:7878", "--tenant", "w1"}));
  EXPECT_EQ(client.connect, "127.0.0.1:7878");
  EXPECT_EQ(client.tenant, "w1");
}

TEST(CliOptions, CountsValidateLowerBounds) {
  EXPECT_THROW(CurieOptions::parse(parse({"curie", "--cells", "0"})),
               std::runtime_error);
  EXPECT_THROW(CurieOptions::parse(parse({"curie", "--flatness", "1.2"})),
               std::runtime_error);
  EXPECT_THROW(ThermoOptions::parse(parse({"thermo", "--dos", "d.csv",
                                           "--tmin", "500", "--tmax", "400"})),
               std::runtime_error);
  EXPECT_THROW(ServeOptions::parse(parse({"serve", "--batch-window", "-5"})),
               std::runtime_error);
}

TEST(CliOptions, ParseMarksKeysQueried) {
  // A fully typed parse must leave no false "unrecognized option" warnings.
  const Options options = parse(
      {"distributed", "--groups", "2", "--wl-steps", "50", "--speculate", "1"});
  (void)DistributedOptions::parse(options);
  EXPECT_TRUE(options.unused_keys().empty());
}

}  // namespace
}  // namespace wlsms::cli
