// Multi-process Communicator tests: fork()ed worker ranks over UNIX-domain
// socketpairs. Covers the echo plumbing, large-frame handling, process
// death via SIGKILL (instant EOF on the socket), and the distributed
// energy service end to end across real OS processes — including the
// acceptance case: energies bit-identical to the serial solver, and a
// worker SIGKILLed mid-run with the request completing via reroute.
//
// Deliberately NOT in the `sanitize` ctest label: tsan does not support
// fork-heavy tests; the thread-backed twin (test_comm_transport.cpp)
// carries the sanitizer coverage for the same service logic.
#include "comm/communicator.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>

#include <csignal>
#include <unistd.h>

#include "comm/distributed_service.hpp"
#include "comm/framing.hpp"
#include "common/rng.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"
#include "lsms/solver.hpp"
#include "wl/energy_function.hpp"

namespace wlsms::comm {
namespace {

using namespace std::chrono_literals;

Message text_message(std::uint32_t tag, const std::string& text) {
  Message message;
  message.tag = tag;
  message.payload.resize(text.size());
  if (!text.empty())
    std::memcpy(message.payload.data(), text.data(), text.size());
  return message;
}

TEST(ProcessCommunicator, EchoAcrossRealProcesses) {
  constexpr std::size_t kRanks = 4;
  auto comm = make_process_communicator(kRanks, [](WorkerChannel& channel) {
    while (std::optional<Message> message = channel.recv())
      channel.send({message->tag + 1, message->payload});
  });
  EXPECT_EQ(comm->n_alive(), kRanks);
  for (std::size_t r = 0; r < kRanks; ++r)
    EXPECT_TRUE(comm->send(r, text_message(static_cast<std::uint32_t>(r),
                                           "rank" + std::to_string(r))));
  std::vector<bool> seen(kRanks, false);
  for (std::size_t k = 0; k < kRanks; ++k) {
    std::optional<Incoming> incoming;
    while (!incoming) incoming = comm->recv(500ms);
    EXPECT_EQ(incoming->message.tag, incoming->rank + 1);
    EXPECT_FALSE(seen[incoming->rank]);
    seen[incoming->rank] = true;
  }
  comm->shutdown();
  EXPECT_EQ(comm->n_alive(), 0u);
}

TEST(ProcessCommunicator, LargeFrameSurvivesTheSocket) {
  // Bigger than any socket buffer, so both the chunked write (EAGAIN +
  // poll) and the reassembling reader are exercised.
  auto comm = make_process_communicator(1, [](WorkerChannel& channel) {
    while (std::optional<Message> message = channel.recv())
      channel.send(*message);
  });
  std::string big(1 << 22, 'x');  // 4 MiB
  for (std::size_t i = 0; i < big.size(); i += 4096)
    big[i] = static_cast<char>('a' + (i / 4096) % 26);
  EXPECT_TRUE(comm->send(0, text_message(7, big)));
  std::optional<Incoming> incoming;
  while (!incoming) incoming = comm->recv(1000ms);
  ASSERT_EQ(incoming->message.payload.size(), big.size());
  EXPECT_EQ(std::memcmp(incoming->message.payload.data(), big.data(),
                        big.size()),
            0);
}

TEST(ProcessCommunicator, SigkillIsImmediateEofDeath) {
  auto comm = make_process_communicator(2, [](WorkerChannel& channel) {
    while (std::optional<Message> message = channel.recv())
      channel.send(*message);
  });
  comm->kill(0);
  comm->kill(0);  // idempotent
  EXPECT_FALSE(comm->alive(0));
  EXPECT_TRUE(comm->alive(1));
  EXPECT_FALSE(comm->send(0, text_message(1, "gone")));
  EXPECT_TRUE(comm->send(1, text_message(2, "alive")));
  std::optional<Incoming> incoming;
  while (!incoming) incoming = comm->recv(500ms);
  EXPECT_EQ(incoming->rank, 1u);
}

TEST(ProcessCommunicator, CrashingWorkerIsRankDeath) {
  // The worker _exit(1)s on its first message (a throw inside the child is
  // treated the same way); the parent must see EOF-death, not hang.
  auto comm = make_process_communicator(1, [](WorkerChannel& channel) {
    (void)channel.recv();
    throw Error("child dies");
  });
  EXPECT_TRUE(comm->send(0, text_message(1, "trigger")));
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (comm->alive(0) && std::chrono::steady_clock::now() < deadline)
    (void)comm->recv(50ms);
  EXPECT_FALSE(comm->alive(0));
}

TEST(ProcessCommunicator, StoppedWorkerTripsTheSendDeadlineNotAHang) {
  // Regression: the controller's write loop used to poll forever when the
  // peer's socket buffer stayed full, so a SIGSTOPped child (or a
  // partitioned TCP peer) wedged the controller inside send(). Now the
  // send deadline expires, send() returns false, and the rank is dead.
  StreamOptions options;
  options.send_deadline = 300ms;
  auto comm = make_process_communicator(
      1,
      [](WorkerChannel& channel) {
        // Report our pid, then go quiet (never read again) so the socket
        // fills once we're stopped.
        const std::uint64_t pid = static_cast<std::uint64_t>(::getpid());
        Message hello;
        hello.tag = 1;
        hello.payload.resize(sizeof(pid));
        std::memcpy(hello.payload.data(), &pid, sizeof(pid));
        channel.send(hello);
        for (;;) ::usleep(100000);
      },
      options);

  std::optional<Incoming> incoming;
  while (!incoming) incoming = comm->recv(500ms);
  std::uint64_t pid = 0;
  ASSERT_EQ(incoming->message.payload.size(), sizeof(pid));
  std::memcpy(&pid, incoming->message.payload.data(), sizeof(pid));
  ASSERT_EQ(::kill(static_cast<pid_t>(pid), SIGSTOP), 0);

  // 1 MiB frames are above the coalescing cork limit, so every send is a
  // direct bounded write. The socket buffer absorbs a few, then the
  // deadline must trip — bounded by iterations * deadline, not forever.
  const Message big{2, std::vector<std::byte>(1 << 20)};
  bool failed = false;
  for (int k = 0; k < 64 && !failed; ++k) failed = !comm->send(0, big);
  EXPECT_TRUE(failed) << "send() never failed against a stopped reader";
  EXPECT_FALSE(comm->alive(0));

  // SIGKILL works on a stopped process; teardown must not hang either.
  comm->kill(0);
  comm->shutdown();
}

TEST(ProcessCommunicator, ShutdownReapsStragglersInParallel) {
  // Regression: shutdown() used to give EACH child its own grace period
  // sequentially (up to 5 s per rank). Four children that ignore EOF must
  // now share ONE grace period and be SIGKILLed together: teardown is
  // O(grace), not O(ranks * grace).
  StreamOptions options;
  options.shutdown_grace = 600ms;
  auto comm = make_process_communicator(
      4,
      [](WorkerChannel& channel) {
        (void)channel;  // never reads: EOF on shutdown is ignored
        for (;;) ::usleep(100000);
      },
      options);
  EXPECT_EQ(comm->n_alive(), 4u);

  const auto start = std::chrono::steady_clock::now();
  comm->shutdown();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // One shared grace (600 ms) + kill/reap overhead. The old sequential
  // behavior would take >= 4 * 600 ms = 2.4 s.
  EXPECT_LT(elapsed, 1800ms)
      << "shutdown took "
      << std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count()
      << " ms; stragglers are being reaped sequentially";
  EXPECT_EQ(comm->n_alive(), 0u);
}

struct Fe16 {
  std::shared_ptr<const lsms::LsmsSolver> solver;
  std::unique_ptr<wl::LsmsEnergy> energy;
};

const Fe16& fe16() {
  static Fe16 fixture = [] {
    Fe16 f;
    f.solver = std::make_shared<const lsms::LsmsSolver>(
        lattice::make_fe_supercell(2), lsms::fe_lsms_parameters_fast());
    f.energy = std::make_unique<wl::LsmsEnergy>(f.solver);
    return f;
  }();
  return fixture;
}

TEST(ProcessDistributedService, BitIdenticalToSerialSolver) {
  const Fe16& f = fe16();
  DistributedConfig config;
  config.n_groups = 2;
  config.group_size = 2;
  config.transport = Transport::kProcess;
  DistributedEnergyService distributed(f.solver, config);
  EXPECT_EQ(distributed.n_workers(), 4u);

  Rng rng(31);
  constexpr std::size_t kEvals = 6;
  std::vector<spin::MomentConfiguration> configs;
  for (std::size_t k = 0; k < kEvals; ++k)
    configs.push_back(spin::MomentConfiguration::random(16, rng));
  for (std::size_t k = 0; k < kEvals; ++k)
    distributed.submit({k % 2, k + 1, configs[k]});
  std::vector<double> got(kEvals, 0.0);
  for (std::size_t k = 0; k < kEvals; ++k) {
    const wl::EnergyResult r = distributed.retrieve();
    EXPECT_FALSE(r.failed);
    got[r.ticket - 1] = r.energy;
  }
  for (std::size_t k = 0; k < kEvals; ++k)
    EXPECT_EQ(got[k], f.energy->total_energy(configs[k]))
        << "eval " << k << " differs from the serial solver";
}

TEST(ProcessDistributedService, SigkilledWorkerMidRunRequestCompletes) {
  const Fe16& f = fe16();
  DistributedConfig config;
  config.n_groups = 1;
  config.group_size = 2;
  config.transport = Transport::kProcess;
  DistributedEnergyService distributed(f.solver, config);

  Rng rng(32);
  const auto moments = spin::MomentConfiguration::random(16, rng);
  distributed.submit({0, 1, moments});
  // SIGKILL one assigned rank immediately after the scatter: the child has
  // barely been scheduled, so its shard is still owed. The controller must
  // see the EOF, re-scatter onto the survivor, and complete the request.
  distributed.communicator().kill(0);
  const wl::EnergyResult result = distributed.retrieve();
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.energy, f.energy->total_energy(moments));
  EXPECT_EQ(distributed.n_alive_workers(), 1u);
  EXPECT_GE(distributed.reroutes(), 1u);

  // Still serviceable afterwards.
  distributed.submit({0, 2, moments});
  EXPECT_EQ(distributed.retrieve().energy, f.energy->total_energy(moments));
}

TEST(ProcessDistributedService, DeltaScatterAcrossProcessesStaysBitIdentical) {
  const Fe16& f = fe16();
  DistributedConfig config;
  config.n_groups = 1;
  config.group_size = 4;
  config.transport = Transport::kProcess;
  DistributedEnergyService distributed(f.solver, config);

  Rng rng(33);
  spin::MomentConfiguration moments = spin::MomentConfiguration::random(16, rng);
  for (std::uint64_t step = 1; step <= 4; ++step) {
    moments.set(rng.uniform_index(16), rng.unit_vector());
    distributed.submit({0, step, moments});
    EXPECT_EQ(distributed.retrieve().energy, f.energy->total_energy(moments))
        << "step " << step;
  }
}

}  // namespace
}  // namespace wlsms::comm
