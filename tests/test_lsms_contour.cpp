// Tests for Gauss-Legendre quadrature and the complex-energy contour.
#include "lsms/contour.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace wlsms::lsms {
namespace {

TEST(GaussLegendre, WeightsSumToTwo) {
  for (std::size_t n : {1u, 2u, 5u, 16u, 31u, 64u}) {
    std::vector<double> x, w;
    gauss_legendre(n, x, w);
    double sum = 0.0;
    for (double v : w) sum += v;
    EXPECT_NEAR(sum, 2.0, 1e-13) << "n=" << n;
  }
}

TEST(GaussLegendre, NodesAreSymmetricAndSorted) {
  std::vector<double> x, w;
  gauss_legendre(10, x, w);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(x[i] + x[9 - i], 0.0, 1e-13);
    if (i) EXPECT_GT(x[i], x[i - 1]);
  }
}

class GaussOrder : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GaussOrder, IntegratesPolynomialsUpToDegree2nMinus1) {
  const std::size_t n = GetParam();
  std::vector<double> x, w;
  gauss_legendre(n, x, w);
  // Exact integral of t^k on [-1, 1]: 0 for odd k, 2/(k+1) for even k.
  for (std::size_t degree = 0; degree <= 2 * n - 1; ++degree) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      sum += w[i] * std::pow(x[i], static_cast<double>(degree));
    const double exact =
        (degree % 2 == 0) ? 2.0 / (static_cast<double>(degree) + 1.0) : 0.0;
    EXPECT_NEAR(sum, exact, 1e-12) << "n=" << n << " degree=" << degree;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussOrder,
                         ::testing::Values(1, 2, 3, 4, 8, 12, 16));

TEST(Contour, IntegratesConstant) {
  // Integral of dz along the contour equals E_F - E_b (path independence).
  const auto contour = semicircle_contour(0.02, 0.42, 24);
  Complex sum{0, 0};
  for (const ContourPoint& p : contour) sum += p.weight;
  EXPECT_NEAR(sum.real(), 0.40, 1e-12);
  EXPECT_NEAR(sum.imag(), 0.0, 1e-12);
}

TEST(Contour, IntegratesLinearFunction) {
  // Integral z dz = (E_F^2 - E_b^2)/2 for analytic integrands.
  const auto contour = semicircle_contour(0.1, 0.9, 24);
  Complex sum{0, 0};
  for (const ContourPoint& p : contour) sum += p.weight * p.z;
  EXPECT_NEAR(sum.real(), 0.5 * (0.81 - 0.01), 1e-12);
  EXPECT_NEAR(sum.imag(), 0.0, 1e-12);
}

TEST(Contour, IntegratesAnalyticPole) {
  // f(z) = 1/(z - p) with the pole p below the real axis is analytic in the
  // upper half-plane: the contour integral equals the principal-branch
  // log difference.
  const Complex pole{0.5, -0.2};
  const auto contour = semicircle_contour(0.1, 0.9, 48);
  Complex sum{0, 0};
  for (const ContourPoint& p : contour) sum += p.weight / (p.z - pole);
  const Complex exact =
      std::log(Complex{0.9, 0.0} - pole) - std::log(Complex{0.1, 0.0} - pole);
  EXPECT_NEAR(sum.real(), exact.real(), 1e-10);
  EXPECT_NEAR(sum.imag(), exact.imag(), 1e-10);
}

TEST(Contour, PointsLieInClosedUpperHalfPlane) {
  const auto contour = semicircle_contour(0.02, 0.42, 16);
  for (const ContourPoint& p : contour) EXPECT_GE(p.z.imag(), 0.0);
}

TEST(Contour, ApexReachesRadiusAboveAxis) {
  const auto contour = semicircle_contour(0.0, 1.0, 31);
  double max_im = 0.0;
  for (const ContourPoint& p : contour)
    max_im = std::max(max_im, p.z.imag());
  EXPECT_GT(max_im, 0.45);  // semicircle of radius 0.5
}

TEST(Contour, InvalidArgumentsThrow) {
  EXPECT_THROW(semicircle_contour(0.5, 0.1, 8), ContractError);
  EXPECT_THROW(semicircle_contour(0.1, 0.5, 0), ContractError);
  std::vector<double> x, w;
  EXPECT_THROW(gauss_legendre(0, x, w), ContractError);
}

}  // namespace
}  // namespace wlsms::lsms
