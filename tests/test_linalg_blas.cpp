// Tests for the hand-rolled ZGEMM/ZGEMV kernels against a naive reference.
#include "linalg/blas.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "perf/flops.hpp"

namespace wlsms::linalg {
namespace {

ZMatrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  ZMatrix m(rows, cols);
  for (std::size_t c = 0; c < cols; ++c)
    for (std::size_t r = 0; r < rows; ++r)
      m(r, c) = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return m;
}

ZMatrix naive_gemm(Complex alpha, const ZMatrix& a, const ZMatrix& b,
                   Complex beta, const ZMatrix& c) {
  ZMatrix out = c;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      Complex acc{0.0, 0.0};
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      out(i, j) = beta * c(i, j) + alpha * acc;
    }
  return out;
}

struct GemmShape {
  std::size_t m, k, n;
};

class ZgemmShapes : public ::testing::TestWithParam<GemmShape> {};

TEST_P(ZgemmShapes, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 10007 + k * 101 + n);
  const ZMatrix a = random_matrix(m, k, rng);
  const ZMatrix b = random_matrix(k, n, rng);
  ZMatrix c = random_matrix(m, n, rng);
  const Complex alpha{0.7, -0.3};
  const Complex beta{-0.2, 0.4};
  const ZMatrix expected = naive_gemm(alpha, a, b, beta, c);
  zgemm(alpha, a, b, beta, c);
  EXPECT_LT(c.max_abs_diff(expected), 1e-12 * static_cast<double>(k + 1));
}

// The shapes deliberately straddle every tiling boundary of the packed
// kernel: below the packing threshold, non-multiples of the MR x NR register
// tile, non-multiples of the cache blocks, and the LU trailing-update shapes
// (k = panel width).
INSTANTIATE_TEST_SUITE_P(
    Shapes, ZgemmShapes,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{2, 3, 4},
                      GemmShape{5, 5, 5}, GemmShape{16, 16, 16},
                      GemmShape{17, 31, 13}, GemmShape{64, 64, 64},
                      GemmShape{65, 70, 67}, GemmShape{1, 128, 1},
                      GemmShape{128, 1, 128}, GemmShape{130, 130, 2},
                      GemmShape{kGemmMR - 1, 40, kGemmNR - 1},
                      GemmShape{kGemmMR + 1, 50, kGemmNR + 1},
                      GemmShape{130, 130, 130}, GemmShape{112, 16, 112},
                      GemmShape{33, 129, 65}, GemmShape{96, 200, 40}));

TEST_P(ZgemmShapes, NaiveKernelMatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 7919 + k * 31 + n);
  const ZMatrix a = random_matrix(m, k, rng);
  const ZMatrix b = random_matrix(k, n, rng);
  ZMatrix c = random_matrix(m, n, rng);
  const Complex alpha{0.7, -0.3};
  const Complex beta{-0.2, 0.4};
  const ZMatrix expected = naive_gemm(alpha, a, b, beta, c);
  zgemm_naive(alpha, a, b, beta, c);
  EXPECT_LT(c.max_abs_diff(expected), 1e-12 * static_cast<double>(k + 1));
}

TEST(Zgemm, BetaZeroOverwritesGarbage) {
  Rng rng(77);
  const ZMatrix a = random_matrix(4, 4, rng);
  const ZMatrix b = random_matrix(4, 4, rng);
  ZMatrix c(4, 4);
  for (std::size_t i = 0; i < 4; ++i) c(i, i) = {1e300, -1e300};
  zgemm(Complex{1, 0}, a, b, Complex{0, 0}, c);
  const ZMatrix expected = naive_gemm({1, 0}, a, b, {0, 0}, ZMatrix(4, 4));
  EXPECT_LT(c.max_abs_diff(expected), 1e-10);
}

TEST(Zgemm, BetaZeroOverwritesNan) {
  // beta == 0 must mean "overwrite", never "multiply": NaN or Inf left in an
  // uninitialized output buffer would otherwise poison the product.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Rng rng(81);
  const ZMatrix a = random_matrix(24, 24, rng);
  const ZMatrix b = random_matrix(24, 24, rng);
  const ZMatrix expected = naive_gemm({1, 0}, a, b, {0, 0}, ZMatrix(24, 24));
  for (const bool naive : {false, true}) {
    ZMatrix c(24, 24);
    for (std::size_t j = 0; j < 24; ++j)
      for (std::size_t i = 0; i < 24; ++i) c(i, j) = {nan, nan};
    if (naive)
      zgemm_naive(Complex{1, 0}, a, b, Complex{0, 0}, c);
    else
      zgemm(Complex{1, 0}, a, b, Complex{0, 0}, c);
    EXPECT_LT(c.max_abs_diff(expected), 1e-11) << "naive=" << naive;
  }
}

TEST(Zgemv, BetaZeroOverwritesNan) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Rng rng(82);
  const ZMatrix a = random_matrix(6, 5, rng);
  const ZMatrix x = random_matrix(5, 1, rng);
  ZMatrix expected(6, 1);
  zgemm(Complex{1, 0}, a, x, Complex{0, 0}, expected);
  std::vector<Complex> y(6, Complex{nan, nan});
  zgemv(Complex{1, 0}, a, x.data(), Complex{0, 0}, y.data());
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_NEAR(std::abs(y[i] - expected(i, 0)), 0.0, 1e-13);
}

TEST(Zgemm, MultithreadedMatchesSingleThreaded) {
  // The packed kernel may spread M panels over the worker pool; results must
  // not depend on the thread count (each C tile has exactly one writer).
  Rng rng(83);
  const ZMatrix a = random_matrix(130, 96, rng);
  const ZMatrix b = random_matrix(96, 70, rng);
  ZMatrix c_serial = random_matrix(130, 70, rng);
  ZMatrix c_parallel = c_serial;
  const Complex alpha{0.9, 0.2};
  const Complex beta{0.5, -0.1};
  ASSERT_EQ(zgemm_threads(), 1u);
  zgemm(alpha, a, b, beta, c_serial);
  set_zgemm_threads(4);
  zgemm(alpha, a, b, beta, c_parallel);
  set_zgemm_threads(1);
  EXPECT_LT(c_parallel.max_abs_diff(c_serial), 1e-11);
}

TEST(Zgemm, BackToBackMultithreadedRunsStayIsolated) {
  // Regression test for a pool-generation race: a worker that woke for run
  // G but was preempted before claiming could, once run G+1 was installed,
  // claim the new run's tasks through the old (destroyed) job closure and
  // corrupt its completion count — silently skipping C row panels. Hammer
  // back-to-back threaded GEMMs, checking every result, so a stale claim
  // surfaces as a wrong panel (and as a use-after-free under sanitizers).
  Rng rng(85);
  const ZMatrix a = random_matrix(130, 96, rng);
  const ZMatrix b = random_matrix(96, 70, rng);
  const ZMatrix expected =
      naive_gemm({1, 0}, a, b, {0, 0}, ZMatrix(130, 70));
  ASSERT_EQ(zgemm_threads(), 1u);
  set_zgemm_threads(4);
  for (int iter = 0; iter < 50; ++iter) {
    ZMatrix c(130, 70);
    zgemm(Complex{1, 0}, a, b, Complex{0, 0}, c);
    if (c.max_abs_diff(expected) > 1e-11) {
      set_zgemm_threads(1);
      FAIL() << "threaded GEMM diverged on iteration " << iter;
    }
  }
  set_zgemm_threads(1);
}

TEST(ZgemmView, OperatesOnSubmatrixWithLeadingDimension) {
  // The raw seam an accelerator backend would implement: C views need not
  // be packed, so exercise lda/ldb/ldc larger than the logical extents.
  Rng rng(84);
  const std::size_t ld = 40;
  const std::size_t m = 17, n = 13, k = 29;
  const ZMatrix a_full = random_matrix(ld, k, rng);
  const ZMatrix b_full = random_matrix(ld, n, rng);
  ZMatrix c_full = random_matrix(ld, n, rng);
  const ZMatrix c_orig = c_full;
  zgemm_view(m, n, k, Complex{1, 0}, a_full.data(), ld, b_full.data(), ld,
             Complex{1, 0}, c_full.data(), ld);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < ld; ++i) {
      Complex expected = c_orig(i, j);
      if (i < m)
        for (std::size_t kk = 0; kk < k; ++kk)
          expected += a_full(i, kk) * b_full(kk, j);
      EXPECT_NEAR(std::abs(c_full(i, j) - expected), 0.0, 1e-12)
          << "i=" << i << " j=" << j;
    }
}

TEST(Zgemm, BooksExactFlopsUnderZgemmKernel) {
  Rng rng(85);
  const ZMatrix a = random_matrix(70, 30, rng);
  const ZMatrix b = random_matrix(30, 20, rng);
  ZMatrix c(70, 20);
  perf::FlopWindow window;
  zgemm(Complex{1, 0}, a, b, Complex{0, 0}, c);
  EXPECT_EQ(window.elapsed(perf::Kernel::kZgemm),
            perf::cost::zgemm(70, 20, 30));
  EXPECT_EQ(window.elapsed(), perf::cost::zgemm(70, 20, 30));
}

TEST(Zgemm, MultiplyByIdentityIsIdentityMap) {
  Rng rng(78);
  const ZMatrix a = random_matrix(9, 9, rng);
  EXPECT_LT(multiply(a, ZMatrix::identity(9)).max_abs_diff(a), 1e-13);
  EXPECT_LT(multiply(ZMatrix::identity(9), a).max_abs_diff(a), 1e-13);
}

TEST(Zgemm, ShapeMismatchThrows) {
  const ZMatrix a(2, 3);
  const ZMatrix b(4, 2);  // inner dimensions disagree
  ZMatrix c(2, 2);
  EXPECT_THROW(zgemm(Complex{1, 0}, a, b, Complex{0, 0}, c),
               ContractError);
}

TEST(Zgemm, ReportsFlops) {
  Rng rng(79);
  const ZMatrix a = random_matrix(8, 8, rng);
  const ZMatrix b = random_matrix(8, 8, rng);
  ZMatrix c(8, 8);
  perf::FlopWindow window;
  zgemm(Complex{1, 0}, a, b, Complex{0, 0}, c);
  EXPECT_GE(window.elapsed(), perf::cost::zgemm(8, 8, 8));
}

TEST(Zgemv, MatchesGemmColumn) {
  Rng rng(80);
  const ZMatrix a = random_matrix(6, 5, rng);
  const ZMatrix x = random_matrix(5, 1, rng);
  ZMatrix y_ref(6, 1);
  zgemm(Complex{1, 0}, a, x, Complex{0, 0}, y_ref);

  std::vector<Complex> y(6, Complex{0, 0});
  zgemv(Complex{1, 0}, a, x.data(), Complex{0, 0}, y.data());
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_NEAR(std::abs(y[i] - y_ref(i, 0)), 0.0, 1e-13);
}

}  // namespace
}  // namespace wlsms::linalg
