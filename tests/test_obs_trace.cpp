// Span tracing: nesting and parent links within and across threads, ring
// overflow accounting, and the Chrome trace_event JSON round-trip (written
// file re-parsed with the obs JSON parser). `sanitize` label: the tsan
// preset runs the cross-thread and concurrent-collect cases.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wlsms::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disable_tracing();
    reset_trace_for_testing();
    Registry::instance().reset_values_for_testing();
  }
  void TearDown() override {
    disable_tracing();
    reset_trace_for_testing();
  }
};

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  {
    const Span outer("outer");
    const Span inner("inner");
  }
  EXPECT_FALSE(tracing_enabled());
  EXPECT_TRUE(collect_trace_events().empty());
  EXPECT_EQ(dropped_trace_events(), 0u);
}

TEST_F(TraceTest, SingleThreadNestingRecordsParentLinks) {
  enable_tracing();
  {
    const Span outer("outer");
    {
      const Span middle("middle");
      const Span inner("inner");
    }
    const Span sibling("sibling");
  }
  const std::vector<TraceEvent> events = collect_trace_events();
  ASSERT_EQ(events.size(), 4u);

  std::map<std::string, TraceEvent> by_name;
  for (const TraceEvent& event : events) by_name[event.name] = event;
  ASSERT_EQ(by_name.size(), 4u);

  EXPECT_EQ(by_name["outer"].parent, 0u);
  EXPECT_EQ(by_name["middle"].parent, by_name["outer"].id);
  EXPECT_EQ(by_name["inner"].parent, by_name["middle"].id);
  EXPECT_EQ(by_name["sibling"].parent, by_name["outer"].id);
  // Destruction order: inner completes before middle, middle before outer.
  EXPECT_LE(by_name["inner"].begin_us + by_name["inner"].dur_us,
            by_name["middle"].begin_us + by_name["middle"].dur_us);
}

TEST_F(TraceTest, CrossThreadSpansAreIndependentChains) {
  enable_tracing();
  {
    const Span outer("main.outer");
    std::thread worker([] {
      // A worker thread's first span has no parent: nesting is per thread,
      // never inherited across threads.
      const Span span("worker.span");
      const Span nested("worker.nested");
    });
    worker.join();
  }
  const std::vector<TraceEvent> events = collect_trace_events();
  ASSERT_EQ(events.size(), 3u);

  std::map<std::string, TraceEvent> by_name;
  for (const TraceEvent& event : events) by_name[event.name] = event;
  EXPECT_EQ(by_name["main.outer"].parent, 0u);
  EXPECT_EQ(by_name["worker.span"].parent, 0u);
  EXPECT_EQ(by_name["worker.nested"].parent, by_name["worker.span"].id);
  EXPECT_NE(by_name["main.outer"].tid, by_name["worker.span"].tid);
  EXPECT_EQ(by_name["worker.span"].tid, by_name["worker.nested"].tid);
}

TEST_F(TraceTest, RingOverflowDropsOldestAndCounts) {
  // Capacity applies to rings created after enable_tracing, so the spans
  // run on a fresh thread (its ring is born with capacity 8).
  enable_tracing(8);
  std::thread worker([] {
    for (int i = 0; i < 20; ++i) {
      const Span span(("span." + std::to_string(i)).c_str());
    }
  });
  worker.join();

  const std::vector<TraceEvent> events = collect_trace_events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest dropped: the 8 survivors are exactly span.12 .. span.19.
  std::vector<std::string> names;
  for (const TraceEvent& event : events) names.push_back(event.name);
  for (int i = 12; i < 20; ++i)
    EXPECT_NE(std::find(names.begin(), names.end(),
                        "span." + std::to_string(i)),
              names.end())
        << "span." << i << " should have survived";
  EXPECT_EQ(dropped_trace_events(), 12u);
  // Truncation is never silent: the registry counter mirrors the drops.
  EXPECT_EQ(Registry::instance().counter("trace.dropped_events").value(), 12u);
}

TEST_F(TraceTest, ChromeExportRoundTripsThroughJsonParser) {
  enable_tracing();
  {
    const Span outer("export.outer");
    const Span inner("export.inner");
  }
  std::thread worker([] { const Span span("export.worker"); });
  worker.join();
  const std::size_t n_events = collect_trace_events().size();
  ASSERT_EQ(n_events, 3u);

  const std::string path = ::testing::TempDir() + "wlsms_trace_roundtrip.json";
  write_chrome_trace(path);

  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0)
    text.append(buffer, got);
  std::fclose(file);
  std::remove(path.c_str());

  const JsonValue document = JsonValue::parse(text);
  ASSERT_TRUE(document.is_object());
  const JsonValue::Array& trace_events =
      document.at("traceEvents").as_array();
  EXPECT_EQ(trace_events.size(), n_events);

  std::map<std::string, const JsonValue*> by_name;
  for (const JsonValue& event : trace_events) {
    EXPECT_EQ(event.at("ph").as_string(), "X");
    EXPECT_TRUE(event.contains("ts"));
    EXPECT_TRUE(event.contains("dur"));
    EXPECT_TRUE(event.contains("tid"));
    EXPECT_TRUE(event.at("args").contains("id"));
    EXPECT_TRUE(event.at("args").contains("parent"));
    by_name[event.at("name").as_string()] = &event;
  }
  ASSERT_EQ(by_name.size(), 3u);
  EXPECT_EQ(by_name.at("export.inner")->at("args").at("parent").as_number(),
            by_name.at("export.outer")->at("args").at("id").as_number());
}

TEST_F(TraceTest, LongNamesAreTruncatedNotCorrupted) {
  enable_tracing();
  const std::string long_name(200, 'x');
  { const Span span(long_name.c_str()); }
  const std::vector<TraceEvent> events = collect_trace_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name), std::string(kTraceNameCapacity, 'x'));
}

TEST_F(TraceTest, TraceNodeIsNonZeroAndJsonDoubleSafe) {
  const std::uint64_t node = local_trace_node();
  EXPECT_NE(node, 0u);
  EXPECT_EQ(node, local_trace_node());  // stable within the process
  EXPECT_LT(node, 1ull << 48);  // survives a double-typed JSON writer
}

TEST_F(TraceTest, CurrentContextIsZeroOffAndCarriesInnermostSpanOn) {
  EXPECT_EQ(current_trace_context().trace_id, 0u);
  EXPECT_EQ(current_trace_context().span_id, 0u);
  enable_tracing();
  // No live span: the node travels but there is no parent to point at.
  EXPECT_EQ(current_trace_context().span_id, 0u);
  TraceContext inside;
  {
    const Span outer("ctx.outer");
    const Span inner("ctx.inner");
    inside = current_trace_context();
  }
  EXPECT_EQ(inside.trace_id, local_trace_node());
  const std::vector<TraceEvent> events = collect_trace_events();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& inner =
      std::string(events[0].name) == "ctx.inner" ? events[0] : events[1];
  EXPECT_EQ(inside.span_id, inner.id);
}

TEST_F(TraceTest, AdoptingSpanRecordsRemoteParent) {
  enable_tracing();
  const TraceContext remote{0x1234500000ull, 77};  // a foreign trace node
  { const Span span("adopted", remote); }
  { const Span degraded("no_parent", TraceContext{}); }
  const std::vector<TraceEvent> events = collect_trace_events();
  ASSERT_EQ(events.size(), 2u);
  std::map<std::string, TraceEvent> by_name;
  for (const TraceEvent& event : events) by_name[event.name] = event;
  EXPECT_EQ(by_name["adopted"].remote_trace, remote.trace_id);
  EXPECT_EQ(by_name["adopted"].remote_parent, remote.span_id);
  EXPECT_EQ(by_name["adopted"].parent, 0u);
  EXPECT_EQ(by_name["no_parent"].remote_trace, 0u);
  EXPECT_EQ(by_name["no_parent"].parent, 0u);
}

TEST_F(TraceTest, AdoptingALocalContextLinksDirectly) {
  enable_tracing();
  TraceContext ctx;
  {
    const Span outer("local.outer");
    ctx = current_trace_context();
  }
  // A context that came "off the wire" but names this very process (e.g. an
  // in-process transport) is recognized and linked like ordinary nesting.
  { const Span child("local.child", ctx); }
  const std::vector<TraceEvent> events = collect_trace_events();
  ASSERT_EQ(events.size(), 2u);
  std::map<std::string, TraceEvent> by_name;
  for (const TraceEvent& event : events) by_name[event.name] = event;
  EXPECT_EQ(by_name["local.child"].parent, by_name["local.outer"].id);
  EXPECT_EQ(by_name["local.child"].remote_trace, 0u);
}

TEST_F(TraceTest, EmitSpanRecordsQueueStraddlingSpans) {
  enable_tracing();
  const TraceContext remote{0xBEEF00000ull, 5};
  const std::uint64_t begin = trace_now_us();
  emit_span("serve.request", begin, begin + 1500, remote);
  const std::vector<TraceEvent> events = collect_trace_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name), "serve.request");
  EXPECT_EQ(events[0].begin_us, begin);
  EXPECT_EQ(events[0].dur_us, 1500u);
  EXPECT_EQ(events[0].remote_trace, remote.trace_id);
  EXPECT_EQ(events[0].remote_parent, remote.span_id);
  disable_tracing();
  emit_span("dark", begin, begin + 10);  // no-op while tracing is off
  EXPECT_EQ(collect_trace_events().size(), 1u);
}

TEST_F(TraceTest, ChromeExportCarriesMergeMetadata) {
  enable_tracing();
  set_clock_offset(-123.5, 0x0ABCDEF0000ull);
  const TraceContext remote{0x777000000ull, 9};
  { const Span span("meta.span", remote); }

  const std::string path = ::testing::TempDir() + "wlsms_trace_meta.json";
  write_chrome_trace(path);
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0)
    text.append(buffer, got);
  std::fclose(file);
  std::remove(path.c_str());

  const JsonValue document = JsonValue::parse(text);
  EXPECT_EQ(document.at("trace_node").as_number(),
            static_cast<double>(local_trace_node()));
  EXPECT_EQ(document.at("clock_offset_us").as_number(), -123.5);
  EXPECT_EQ(document.at("clock_reference").as_number(),
            static_cast<double>(0x0ABCDEF0000ull));
  EXPECT_TRUE(document.contains("wall_epoch_ms"));
  EXPECT_TRUE(document.contains("process"));
  const JsonValue::Array& events = document.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].at("args").at("remote_trace").as_number(),
            static_cast<double>(remote.trace_id));
  EXPECT_EQ(events[0].at("args").at("remote_parent").as_number(),
            static_cast<double>(remote.span_id));
  set_clock_offset(0.0, 0);  // restore: offsets persist across tests
}

TEST_F(TraceTest, ClockOffsetAccessorReflectsLastEstimate) {
  set_clock_offset(42.25, 0x1111100000ull);
  EXPECT_EQ(clock_offset_us(), 42.25);
  set_clock_offset(0.0, 0);
}

TEST_F(TraceTest, ConcurrentSpansAndCollectAreSafe) {
  enable_tracing();
  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < 500; ++i) {
        const Span outer("hammer.outer");
        const Span inner("hammer.inner");
      }
    });
  // Collect concurrently with the writers: must not crash or race; the
  // final quiescent collect sees every surviving event.
  for (int i = 0; i < 10; ++i) (void)collect_trace_events();
  for (std::thread& thread : threads) thread.join();
  const std::vector<TraceEvent> events = collect_trace_events();
  EXPECT_EQ(events.size() + dropped_trace_events(), kThreads * 1000u);
}

}  // namespace
}  // namespace wlsms::obs
