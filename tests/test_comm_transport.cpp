// In-process Communicator and DistributedEnergyService tests: echo plumbing,
// heartbeat/liveness bookkeeping, kill -> reroute resilience, the
// retrieve-with-nothing-outstanding contract across every EnergyService
// implementation the factory can build, and a messaging stress run. All
// thread-backed (Transport::kInProcess), so the sanitize label runs the
// whole file under tsan and asan-ubsan; the fork()ed-process twin lives in
// test_comm_process.cpp.
#include "comm/communicator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "comm/distributed_service.hpp"
#include "comm/factory.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"
#include "lsms/solver.hpp"
#include "obs/metrics.hpp"
#include "wl/energy_service.hpp"

namespace wlsms::comm {
namespace {

using namespace std::chrono_literals;

Message text_message(std::uint32_t tag, const std::string& text) {
  Message message;
  message.tag = tag;
  message.payload.resize(text.size());
  std::memcpy(message.payload.data(), text.data(), text.size());
  return message;
}

std::string text_of(const Message& message) {
  return std::string(reinterpret_cast<const char*>(message.payload.data()),
                     message.payload.size());
}

// ---- raw communicator ----------------------------------------------------

TEST(InProcessCommunicator, EchoAllRanks) {
  constexpr std::size_t kRanks = 3;
  auto comm = make_in_process_communicator(kRanks, [](WorkerChannel& channel) {
    while (std::optional<Message> message = channel.recv())
      channel.send({message->tag + 1, message->payload});
  });
  EXPECT_EQ(comm->n_ranks(), kRanks);
  EXPECT_EQ(comm->n_alive(), kRanks);

  for (std::size_t r = 0; r < kRanks; ++r)
    EXPECT_TRUE(comm->send(r, text_message(10 * static_cast<std::uint32_t>(r),
                                           "ping" + std::to_string(r))));
  std::vector<bool> seen(kRanks, false);
  for (std::size_t k = 0; k < kRanks; ++k) {
    std::optional<Incoming> incoming;
    while (!incoming) incoming = comm->recv(200ms);
    EXPECT_FALSE(seen[incoming->rank]);
    seen[incoming->rank] = true;
    EXPECT_EQ(incoming->message.tag, 10 * incoming->rank + 1);
    EXPECT_EQ(text_of(incoming->message),
              "ping" + std::to_string(incoming->rank));
  }
  comm->shutdown();
  EXPECT_EQ(comm->n_alive(), 0u);
}

TEST(InProcessCommunicator, RecvTimesOutWhenQuiet) {
  auto comm = make_in_process_communicator(1, [](WorkerChannel& channel) {
    while (channel.recv()) {
    }
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(comm->recv(50ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, 40ms);
}

TEST(InProcessCommunicator, KillFlipsLivenessAndDropsTraffic) {
  auto comm = make_in_process_communicator(2, [](WorkerChannel& channel) {
    while (std::optional<Message> message = channel.recv())
      channel.send(*message);
  });
  comm->kill(0);
  comm->kill(0);  // idempotent
  EXPECT_FALSE(comm->alive(0));
  EXPECT_TRUE(comm->alive(1));
  EXPECT_EQ(comm->n_alive(), 1u);
  EXPECT_FALSE(comm->send(0, text_message(1, "into the void")));
  EXPECT_TRUE(comm->send(1, text_message(2, "still here")));
  std::optional<Incoming> incoming;
  while (!incoming) incoming = comm->recv(200ms);
  EXPECT_EQ(incoming->rank, 1u);
  // Dead ranks report a huge silence, so any timeout cut catches them.
  EXPECT_GT(comm->millis_since_heard(0), 1u << 30);
}

TEST(InProcessCommunicator, WorkerExitIsRankDeath) {
  auto comm = make_in_process_communicator(1, [](WorkerChannel& channel) {
    (void)channel.recv();  // first message ends the worker
  });
  EXPECT_TRUE(comm->send(0, text_message(1, "bye")));
  for (int k = 0; k < 100 && comm->alive(0); ++k)
    std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(comm->alive(0));
}

TEST(InProcessCommunicator, ThrowingWorkerIsRankDeathNotTermination) {
  auto comm = make_in_process_communicator(1, [](WorkerChannel& channel) {
    (void)channel.recv();
    throw Error("worker blew up");
  });
  EXPECT_TRUE(comm->send(0, text_message(1, "boom")));
  for (int k = 0; k < 100 && comm->alive(0); ++k)
    std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(comm->alive(0));
}

TEST(InProcessCommunicator, WedgedWorkerGoesSilentButIdleWorkerHeartbeats) {
  // Rank 0 "computes" (sleeps without recv'ing) after its first message;
  // rank 1 idles in recv, heartbeating. After ~500ms rank 0's silence
  // exceeds any reasonable timeout while rank 1 stays fresh — exactly the
  // signal the distributed service's health check keys on.
  auto comm = make_in_process_communicator(2, [](WorkerChannel& channel) {
    bool first = true;
    while (std::optional<Message> message = channel.recv()) {
      if (channel.rank() == 0 && first) {
        first = false;
        std::this_thread::sleep_for(600ms);
      }
    }
  });
  EXPECT_TRUE(comm->send(0, text_message(1, "work")));
  std::this_thread::sleep_for(450ms);
  EXPECT_TRUE(comm->alive(0));
  EXPECT_GT(comm->millis_since_heard(0), 350u);
  EXPECT_LT(comm->millis_since_heard(1), 300u);
  comm->shutdown();
}

TEST(Transport, ParseAndName) {
  EXPECT_EQ(parse_transport("inprocess"), Transport::kInProcess);
  EXPECT_EQ(parse_transport("threads"), Transport::kInProcess);
  EXPECT_EQ(parse_transport("process"), Transport::kProcess);
  EXPECT_EQ(parse_transport("fork"), Transport::kProcess);
  EXPECT_THROW(parse_transport("carrier-pigeon"), CommError);
  EXPECT_STREQ(transport_name(Transport::kInProcess), "inprocess");
  EXPECT_STREQ(transport_name(Transport::kProcess), "process");
}

// ---- distributed energy service on the in-process transport --------------

struct Fe16 {
  std::shared_ptr<const lsms::LsmsSolver> solver;
  std::unique_ptr<wl::LsmsEnergy> energy;
};

const Fe16& fe16() {
  static Fe16 fixture = [] {
    Fe16 f;
    f.solver = std::make_shared<const lsms::LsmsSolver>(
        lattice::make_fe_supercell(2), lsms::fe_lsms_parameters_fast());
    f.energy = std::make_unique<wl::LsmsEnergy>(f.solver);
    return f;
  }();
  return fixture;
}

TEST(DistributedService, BitIdenticalToSynchronousReference) {
  const Fe16& f = fe16();
  wl::SynchronousEnergyService reference(*f.energy);

  DistributedConfig config;
  config.n_groups = 2;
  config.group_size = 2;
  config.transport = Transport::kInProcess;
  DistributedEnergyService distributed(f.solver, config);

  Rng rng(21);
  constexpr std::size_t kEvals = 8;
  std::vector<spin::MomentConfiguration> configs;
  for (std::size_t k = 0; k < kEvals; ++k)
    configs.push_back(spin::MomentConfiguration::random(16, rng));

  // Walker ids repeat across requests so the moved-site delta scatter path
  // (second and later sends of a walker to the same rank) is exercised too.
  for (std::size_t k = 0; k < kEvals; ++k) {
    reference.submit({k % 2, k + 1, configs[k]});
    distributed.submit({k % 2, k + 1, configs[k]});
  }
  std::vector<double> expected(kEvals), got(kEvals);
  for (std::size_t k = 0; k < kEvals; ++k) {
    const wl::EnergyResult r = reference.retrieve();
    expected[r.ticket - 1] = r.energy;
    const wl::EnergyResult d = distributed.retrieve();
    EXPECT_FALSE(d.failed);
    got[d.ticket - 1] = d.energy;
  }
  for (std::size_t k = 0; k < kEvals; ++k)
    EXPECT_EQ(got[k], expected[k]) << "eval " << k << " not bit-identical";
  EXPECT_EQ(distributed.outstanding(), 0u);
}

TEST(DistributedService, DeltaScatterAfterSingleMoveStaysBitIdentical) {
  const Fe16& f = fe16();
  DistributedConfig config;
  config.n_groups = 1;
  config.group_size = 2;
  config.transport = Transport::kInProcess;
  DistributedEnergyService distributed(f.solver, config);

  Rng rng(22);
  spin::MomentConfiguration moments = spin::MomentConfiguration::random(16, rng);
  for (std::uint64_t step = 1; step <= 5; ++step) {
    // One-site move per step: from the second submission on, the scatter is
    // a one-element MovedSite delta.
    moments.set(rng.uniform_index(16), rng.unit_vector());
    distributed.submit({0, step, moments});
    const wl::EnergyResult result = distributed.retrieve();
    EXPECT_EQ(result.energy, f.energy->total_energy(moments))
        << "step " << step;
  }
}

TEST(DistributedService, SessionsWithEqualWalkerIdsDoNotAliasDeltaCaches) {
  // The serving daemon multiplexes many tenant sessions over one service,
  // and every session numbers its walkers from zero. The delta caches are
  // keyed on (session, walker): a new session's first request for walker 0
  // must be a full scatter, never a delta against some other session's
  // walker 0 baseline.
  const Fe16& f = fe16();
  DistributedConfig config;
  config.n_groups = 1;
  config.group_size = 1;
  config.transport = Transport::kInProcess;
  DistributedEnergyService distributed(f.solver, config);

  obs::Counter& fulls = obs::Registry::instance().counter("comm.full_scatters");
  obs::Counter& deltas =
      obs::Registry::instance().counter("comm.delta_scatters");

  Rng rng(28);
  auto submit = [&](std::uint64_t session, std::uint64_t ticket,
                    const spin::MomentConfiguration& moments) {
    wl::EnergyRequest request;
    request.walker = 0;  // both sessions use walker id 0
    request.ticket = ticket;
    request.config = moments;
    request.session = session;
    distributed.submit(request);
    const wl::EnergyResult result = distributed.retrieve();
    EXPECT_EQ(result.energy, f.energy->total_energy(moments))
        << "session " << session << " ticket " << ticket;
  };

  spin::MomentConfiguration a = spin::MomentConfiguration::random(16, rng);
  spin::MomentConfiguration b = spin::MomentConfiguration::random(16, rng);

  const std::uint64_t full0 = fulls.value(), delta0 = deltas.value();
  submit(1, 1, a);  // session 1, first sight of (1, walker 0): full
  EXPECT_EQ(fulls.value(), full0 + 1);

  a.set(3, rng.unit_vector());
  submit(1, 2, a);  // same session, one moved site: delta
  EXPECT_EQ(deltas.value(), delta0 + 1);

  submit(2, 3, b);  // NEW session, same walker id: must be full again
  EXPECT_EQ(fulls.value(), full0 + 2)
      << "session 2's first request reused session 1's walker-0 delta cache";
  EXPECT_EQ(deltas.value(), delta0 + 1);

  b.set(5, rng.unit_vector());
  submit(2, 4, b);  // and session 2 gets its own delta stream afterwards
  EXPECT_EQ(deltas.value(), delta0 + 2);
}

TEST(DistributedService, EvictSessionDropsDeltaCachesAndStaysCorrect) {
  // Under session churn (a daemon multiplexing many short-lived tenants)
  // the per-(session, walker) delta caches must not grow without bound:
  // evict_session drops a closed session's entries on the controller and
  // every worker, and a later reuse of the key simply scatters full again.
  const Fe16& f = fe16();
  DistributedConfig config;
  config.n_groups = 1;
  config.group_size = 2;
  config.transport = Transport::kInProcess;
  DistributedEnergyService distributed(f.solver, config);

  obs::Counter& fulls = obs::Registry::instance().counter("comm.full_scatters");

  Rng rng(29);
  auto submit = [&](std::uint64_t session, std::uint64_t ticket,
                    const spin::MomentConfiguration& moments) {
    wl::EnergyRequest request;
    request.walker = 0;
    request.ticket = ticket;
    request.config = moments;
    request.session = session;
    distributed.submit(request);
    const wl::EnergyResult result = distributed.retrieve();
    EXPECT_FALSE(result.failed);
    EXPECT_EQ(result.energy, f.energy->total_energy(moments))
        << "session " << session << " ticket " << ticket;
  };

  spin::MomentConfiguration a = spin::MomentConfiguration::random(16, rng);
  spin::MomentConfiguration b = spin::MomentConfiguration::random(16, rng);
  submit(1, 1, a);
  submit(2, 2, b);
  // Both ranks cached both sessions' walker-0 configuration.
  EXPECT_EQ(distributed.delta_cache_entries(), 4u);

  distributed.evict_session(1);
  EXPECT_EQ(distributed.delta_cache_entries(), 2u);
  distributed.evict_session(1);  // idempotent
  EXPECT_EQ(distributed.delta_cache_entries(), 2u);

  // The evicted session's next request is a full scatter (to both ranks)
  // and still bit-identical; the surviving session's delta stream is
  // untouched by the eviction.
  const std::uint64_t full0 = fulls.value();
  a.set(7, rng.unit_vector());
  submit(1, 3, a);
  EXPECT_EQ(fulls.value(), full0 + 2)
      << "post-evict request must rebuild the basis with full scatters";
  EXPECT_EQ(distributed.delta_cache_entries(), 4u);
  b.set(9, rng.unit_vector());
  submit(2, 4, b);
  EXPECT_EQ(fulls.value(), full0 + 2);
}

TEST(DistributedService, KilledWorkerIsReroutedAndRequestCompletes) {
  const Fe16& f = fe16();
  DistributedConfig config;
  config.n_groups = 1;
  config.group_size = 2;
  config.transport = Transport::kInProcess;
  DistributedEnergyService distributed(f.solver, config);

  Rng rng(23);
  const auto moments = spin::MomentConfiguration::random(16, rng);
  distributed.submit({0, 1, moments});
  // Kill one of the two assigned ranks right after the scatter. The kill
  // races the worker's shard solve, but the outcome must not: even if the
  // worker's gather beat the kill into the controller's queue, the service
  // discards frames from dead ranks, so the health check inside retrieve()
  // always detects the death and re-scatters over the survivor.
  distributed.communicator().kill(0);
  const wl::EnergyResult result = distributed.retrieve();
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.energy, f.energy->total_energy(moments));
  EXPECT_EQ(distributed.n_alive_workers(), 1u);
  EXPECT_GE(distributed.reroutes(), 1u);

  // The service keeps working on the surviving rank.
  distributed.submit({0, 2, moments});
  EXPECT_EQ(distributed.retrieve().energy, f.energy->total_energy(moments));
}

TEST(DistributedService, GroupDeathMigratesRequestToAnotherGroup) {
  const Fe16& f = fe16();
  DistributedConfig config;
  config.n_groups = 2;
  config.group_size = 1;
  config.transport = Transport::kInProcess;
  DistributedEnergyService distributed(f.solver, config);

  Rng rng(24);
  const auto moments = spin::MomentConfiguration::random(16, rng);
  distributed.submit({0, 1, moments});  // lands on group 0 (rank 0)
  distributed.communicator().kill(0);   // group 0 is now extinct
  const wl::EnergyResult result = distributed.retrieve();
  EXPECT_EQ(result.energy, f.energy->total_energy(moments));
  EXPECT_EQ(distributed.n_alive_workers(), 1u);
}

TEST(DistributedService, AllRanksDeadThrowsCommError) {
  const Fe16& f = fe16();
  DistributedConfig config;
  config.n_groups = 1;
  config.group_size = 2;
  config.transport = Transport::kInProcess;
  DistributedEnergyService distributed(f.solver, config);

  Rng rng(25);
  distributed.submit({0, 1, spin::MomentConfiguration::random(16, rng)});
  distributed.communicator().kill(0);
  distributed.communicator().kill(1);
  EXPECT_THROW(distributed.retrieve(), CommError);
}

TEST(DistributedService, ManyRequestsSurviveAKillMidStream) {
  const Fe16& f = fe16();
  DistributedConfig config;
  config.n_groups = 2;
  config.group_size = 2;
  config.transport = Transport::kInProcess;
  DistributedEnergyService distributed(f.solver, config);

  Rng rng(26);
  constexpr std::size_t kEvals = 10;
  std::vector<spin::MomentConfiguration> configs;
  for (std::size_t k = 0; k < kEvals; ++k)
    configs.push_back(spin::MomentConfiguration::random(16, rng));
  for (std::size_t k = 0; k < kEvals; ++k)
    distributed.submit({k % 3, k + 1, configs[k]});

  std::vector<double> got(kEvals, 0.0);
  for (std::size_t k = 0; k < kEvals; ++k) {
    if (k == 2) distributed.communicator().kill(1);
    const wl::EnergyResult r = distributed.retrieve();
    got[r.ticket - 1] = r.energy;
  }
  for (std::size_t k = 0; k < kEvals; ++k)
    EXPECT_EQ(got[k], f.energy->total_energy(configs[k])) << "eval " << k;
}

// ---- retrieve() with nothing outstanding: every implementation -----------

TEST(RetrieveEmpty, EveryFactoryServiceThrowsWlsmsError) {
  const Fe16& f = fe16();
  const std::vector<ServiceKind> kinds = {
      ServiceKind::kSynchronous, ServiceKind::kReordering,
      ServiceKind::kAsyncThreads, ServiceKind::kDistributed};
  for (ServiceKind kind : kinds) {
    EnergyServiceSpec spec;
    spec.kind = kind;
    spec.energy = f.energy.get();
    spec.n_instances = 2;
    spec.distributed.n_groups = 1;
    spec.distributed.group_size = 2;
    spec.distributed.transport = Transport::kInProcess;
    const std::unique_ptr<wl::EnergyService> service =
        make_energy_service(spec);
    EXPECT_THROW(service->retrieve(), Error)
        << "kind " << static_cast<int>(kind);
    EXPECT_EQ(service->outstanding(), 0u);
  }
}

TEST(RetrieveEmpty, FailureWrappedServiceThrowsWlsmsError) {
  const Fe16& f = fe16();
  EnergyServiceSpec spec;
  spec.kind = ServiceKind::kSynchronous;
  spec.energy = f.energy.get();
  spec.failure_probability = 0.5;
  const std::unique_ptr<wl::EnergyService> service = make_energy_service(spec);
  EXPECT_THROW(service->retrieve(), Error);
}

// ---- factory validation --------------------------------------------------

TEST(Factory, RejectsMissingEnergyAndBadSpecs) {
  const Fe16& f = fe16();
  EnergyServiceSpec spec;
  EXPECT_THROW(make_energy_service(spec), Error);  // no energy

  wl::HeisenbergEnergy heisenberg(heisenberg::HeisenbergModel(
      lattice::make_fe_supercell(2), {1e-3}));
  spec.energy = &heisenberg;
  spec.kind = ServiceKind::kDistributed;
  EXPECT_THROW(make_energy_service(spec), Error);  // not an LSMS backend

  spec.kind = ServiceKind::kSynchronous;
  spec.failure_probability = 1.5;
  EXPECT_THROW(make_energy_service(spec), Error);

  spec.failure_probability = 0.0;
  spec.kind = ServiceKind::kAsyncThreads;
  spec.n_instances = 0;
  EXPECT_THROW(make_energy_service(spec), Error);

  // And a well-formed spec of every kind builds and works end to end.
  EnergyServiceSpec good;
  good.energy = f.energy.get();
  good.kind = ServiceKind::kDistributed;
  good.distributed.transport = Transport::kInProcess;
  const std::unique_ptr<wl::EnergyService> service = make_energy_service(good);
  Rng rng(27);
  const auto moments = spin::MomentConfiguration::random(16, rng);
  service->submit({0, 1, moments});
  EXPECT_EQ(service->retrieve().energy, f.energy->total_energy(moments));
}

// ---- stress --------------------------------------------------------------

TEST(InProcessCommunicator, MessageStress) {
  constexpr std::size_t kRanks = 4;
  constexpr std::size_t kMessages = 400;
  std::atomic<std::size_t> worker_received{0};
  auto comm = make_in_process_communicator(
      kRanks, [&worker_received](WorkerChannel& channel) {
        while (std::optional<Message> message = channel.recv()) {
          worker_received.fetch_add(1);
          channel.send({message->tag, message->payload});
        }
      });
  for (std::size_t k = 0; k < kMessages; ++k)
    EXPECT_TRUE(comm->send(k % kRanks,
                           text_message(static_cast<std::uint32_t>(k), "m")));
  std::size_t received = 0;
  std::vector<bool> seen(kMessages, false);
  while (received < kMessages) {
    std::optional<Incoming> incoming = comm->recv(500ms);
    ASSERT_TRUE(incoming.has_value()) << "after " << received << " messages";
    ASSERT_LT(incoming->message.tag, kMessages);
    EXPECT_FALSE(seen[incoming->message.tag]);
    seen[incoming->message.tag] = true;
    ++received;
  }
  comm->shutdown();
  EXPECT_EQ(worker_received.load(), kMessages);
}

}  // namespace
}  // namespace wlsms::comm
