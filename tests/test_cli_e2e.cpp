// End-to-end observability through the installed binary: real `wlsms`
// processes wired together over loopback TCP. Covers the live-introspection
// path (`wlsms status` against a serving daemon and a distributed
// controller), the SIGINT final-snapshot guarantee of `wlsms serve`, and the
// production of per-process trace files that tools/trace_merge.py stitches
// (the merge itself is asserted by the fixture-chained python tests).
//
// WLSMS_BINARY is injected by CMake as the path to the wlsms executable.
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

using Clock = std::chrono::steady_clock;

/// One spawned wlsms subprocess with its stdout captured through a pipe
/// (stderr stays on the test's stderr so failures are debuggable).
struct Child {
  pid_t pid = -1;
  int out = -1;
  std::string buffered;

  ~Child() {
    if (out >= 0) ::close(out);
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }
};

void spawn(Child& child, const std::vector<std::string>& args) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(fds[0]);
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(WLSMS_BINARY));
    for (const std::string& arg : args)
      argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(WLSMS_BINARY, argv.data());
    std::perror("execv wlsms");
    ::_exit(127);
  }
  ::close(fds[1]);
  child.pid = pid;
  child.out = fds[0];
}

/// Reads the child's stdout until a line containing `needle` appears;
/// returns that line. Fails the test on timeout or EOF.
std::string await_line(Child& child, const std::string& needle,
                       std::chrono::seconds timeout) {
  const Clock::time_point deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    std::size_t start = 0;
    for (std::size_t end = child.buffered.find('\n', start);
         end != std::string::npos;
         start = end + 1, end = child.buffered.find('\n', start)) {
      const std::string line = child.buffered.substr(start, end - start);
      if (line.find(needle) != std::string::npos) {
        child.buffered.erase(0, end + 1);
        return line;
      }
    }
    child.buffered.erase(0, start);

    struct pollfd pfd = {child.out, POLLIN, 0};
    if (::poll(&pfd, 1, 200) <= 0) continue;
    char chunk[4096];
    const ssize_t got = ::read(child.out, chunk, sizeof(chunk));
    if (got <= 0) break;  // EOF: fall through to the failure below
    child.buffered.append(chunk, static_cast<std::size_t>(got));
  }
  ADD_FAILURE() << "never saw '" << needle << "' in child stdout; got:\n"
                << child.buffered;
  return {};
}

/// Waits for exit (draining stdout so the child never blocks on a full
/// pipe); returns the exit status or -1 on timeout.
int await_exit(Child& child, std::chrono::seconds timeout) {
  const Clock::time_point deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    char chunk[4096];
    struct pollfd pfd = {child.out, POLLIN, 0};
    while (::poll(&pfd, 1, 0) > 0 &&
           ::read(child.out, chunk, sizeof(chunk)) > 0) {
    }
    int status = 0;
    const pid_t got = ::waitpid(child.pid, &status, WNOHANG);
    if (got == child.pid) {
      child.pid = -1;
      return WIFEXITED(status) ? WEXITSTATUS(status) : -2;
    }
    ::poll(&pfd, 1, 100);
  }
  return -1;
}

/// Runs one wlsms invocation to completion, capturing stdout.
std::string run_capture(const std::vector<std::string>& args,
                        int* exit_code) {
  Child child;
  spawn(child, args);
  std::string out;
  char chunk[4096];
  ssize_t got = 0;
  while ((got = ::read(child.out, chunk, sizeof(chunk))) > 0)
    out.append(chunk, static_cast<std::size_t>(got));
  int status = 0;
  ::waitpid(child.pid, &status, 0);
  child.pid = -1;
  *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -2;
  return out;
}

std::string address_after(const std::string& line, const std::string& prefix) {
  const std::size_t at = line.find(prefix);
  if (at == std::string::npos) return {};
  std::string rest = line.substr(at + prefix.size());
  const std::size_t cut = rest.find_first_of(" ;");
  if (cut != std::string::npos) rest.resize(cut);
  return rest;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Minimal Prometheus 0.0.4 well-formedness check: non-empty, and every
/// line is a `# TYPE` header or `name[{labels}] value`.
void expect_prometheus_parseable(const std::string& text) {
  ASSERT_FALSE(text.empty());
  std::istringstream lines(text);
  std::string line;
  std::size_t series = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << "unparseable line: " << line;
    const std::string name = line.substr(0, line.find_first_of("{ "));
    ASSERT_FALSE(name.empty()) << line;
    ASSERT_TRUE(std::isalpha(static_cast<unsigned char>(name[0])) ||
                name[0] == '_')
        << line;
    ++series;
  }
  EXPECT_GT(series, 0u);
}

TEST(CliE2e, ServeStatusProbeAndSigintFinalSnapshot) {
  const std::string metrics = "e2e_serve.metrics.jsonl";
  const std::string trace = "e2e_serve.trace.json";
  std::remove(metrics.c_str());
  std::remove(trace.c_str());

  Child daemon;
  spawn(daemon, {"serve", "--listen", "127.0.0.1:0", "--cells", "2",
                 "--metrics-out", metrics, "--trace-out", trace});
  const std::string serving = await_line(daemon, "serving on ",
                                         std::chrono::seconds(60));
  const std::string address = address_after(serving, "serving on ");
  ASSERT_FALSE(address.empty()) << serving;

  // A tenant runs a few evaluations so the stage histograms have samples.
  int code = -1;
  const std::string client_out =
      run_capture({"client", "--connect", address, "--evals", "3",
                   "--walkers", "2", "--cells", "2"},
                  &code);
  EXPECT_EQ(code, 0) << client_out;

  // Live introspection while the daemon keeps serving.
  const std::string status =
      run_capture({"status", address}, &code);
  EXPECT_EQ(code, 0) << status;
  expect_prometheus_parseable(status);
  EXPECT_NE(status.find("# TYPE serve_stage_ms_solve histogram"),
            std::string::npos)
      << status;
  EXPECT_NE(status.find("serve_stage_ms_queue_wait_bucket"),
            std::string::npos);
  EXPECT_NE(status.find("serve_tenant_stage_ms_solve_count{tenant="
                        "\"default\"} 3"),
            std::string::npos)
      << status;
  EXPECT_NE(status.find("serve_request_latency_ms_bucket"),
            std::string::npos);

  // SIGINT: the daemon must drain, exit 0, and leave a "final" snapshot
  // record (the regression this guards: a killed daemon whose telemetry
  // stream just stops mid-interval).
  ASSERT_EQ(::kill(daemon.pid, SIGINT), 0);
  EXPECT_EQ(await_exit(daemon, std::chrono::seconds(30)), 0);

  const std::string records = slurp(metrics);
  ASSERT_FALSE(records.empty());
  const std::size_t last_start = records.rfind('\n', records.size() - 2);
  const std::string last = records.substr(
      last_start == std::string::npos ? 0 : last_start + 1);
  EXPECT_NE(last.find("\"reason\":\"final\""), std::string::npos) << last;
  // Every record carries the trace-health block and wall-clock stamp.
  EXPECT_NE(last.find("\"trace\":"), std::string::npos);
  EXPECT_NE(last.find("\"dropped_events\":"), std::string::npos);
  EXPECT_NE(last.find("\"clock_offset_us\":"), std::string::npos);
  EXPECT_NE(last.find("\"wall_ms\":"), std::string::npos);

  EXPECT_NE(slurp(trace).find("\"traceEvents\""), std::string::npos);
}

TEST(CliE2e, DistributedExternalWorkersAlignClocksAndEmitTraces) {
  const std::vector<std::string> traces = {"e2e_ctrl.trace.json",
                                           "e2e_worker1.trace.json",
                                           "e2e_worker2.trace.json"};
  for (const std::string& path : traces) std::remove(path.c_str());

  // Controller: 1 group x 2 ranks over TCP, workers joining from outside,
  // plus a live status endpoint. The WL phase keeps it running long enough
  // to probe, and its driver spans are the parents the workers' shard-solve
  // spans adopt.
  Child controller;
  spawn(controller,
        {"distributed", "--transport", "tcp", "--external", "1", "--groups", "1",
         "--group-size", "2", "--cells", "2", "--evals", "4", "--wl-steps",
         "2000", "--status-listen", "127.0.0.1:0", "--trace-out", traces[0],
         "--metrics-out", "e2e_ctrl.metrics.jsonl"});
  const std::string status_line = await_line(
      controller, "status endpoint on ", std::chrono::seconds(30));
  const std::string status_address =
      address_after(status_line, "status endpoint on ");
  ASSERT_FALSE(status_address.empty()) << status_line;
  const std::string listening =
      await_line(controller, "listening on ", std::chrono::seconds(60));
  const std::string address = address_after(listening, "listening on ");
  ASSERT_FALSE(address.empty()) << listening;

  Child worker1;
  Child worker2;
  spawn(worker1, {"worker", "--connect", address, "--cells", "2",
                  "--trace-out", traces[1]});
  spawn(worker2, {"worker", "--connect", address, "--cells", "2",
                  "--trace-out", traces[2]});

  // Poll the controller's status endpoint until the heartbeat clock echoes
  // have produced per-rank offset gauges (both ranks), while the run is
  // still in flight.
  std::string status;
  const Clock::time_point deadline = Clock::now() + std::chrono::seconds(60);
  while (Clock::now() < deadline) {
    int code = -1;
    status = run_capture({"status", status_address}, &code);
    if (code == 0 &&
        status.find("comm_clock_offset_us{rank=\"0\"}") != std::string::npos &&
        status.find("comm_clock_offset_us{rank=\"1\"}") != std::string::npos)
      break;
    int probe = 0;
    if (::waitpid(controller.pid, &probe, WNOHANG) == controller.pid) {
      controller.pid = -1;
      FAIL() << "controller exited before per-rank clock gauges appeared; "
                "last status:\n"
             << status;
    }
    ::usleep(200000);
  }
  expect_prometheus_parseable(status);
  EXPECT_NE(status.find("comm_clock_offset_us{rank=\"0\"}"),
            std::string::npos)
      << status;
  EXPECT_NE(status.find("comm_clock_offset_us{rank=\"1\"}"),
            std::string::npos);

  EXPECT_EQ(await_exit(controller, std::chrono::seconds(300)), 0);
  EXPECT_EQ(await_exit(worker1, std::chrono::seconds(60)), 0);
  EXPECT_EQ(await_exit(worker2, std::chrono::seconds(60)), 0);

  // Each process left its own trace file: the controller as the clock
  // reference (offset 0), the workers stamped with their handshake offset
  // estimates. trace_merge.py (next in the fixture chain) stitches them.
  for (const std::string& path : traces) {
    const std::string text = slurp(path);
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos) << path;
    EXPECT_NE(text.find("\"trace_node\""), std::string::npos) << path;
  }
  for (std::size_t k = 1; k < traces.size(); ++k)
    EXPECT_NE(slurp(traces[k]).find("\"clock_reference\""), std::string::npos)
        << traces[k];
}

}  // namespace
