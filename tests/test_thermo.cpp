// Tests for the DOS -> thermodynamics layer (paper eqs. 9-16) on
// analytically known densities of states.
#include "thermo/observables.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "common/units.hpp"

namespace wlsms::thermo {
namespace {

// Uniform DOS on [e_lo, e_hi]: Z ~ integral e^{-beta E} dE, so
// U = <E> of a truncated exponential, computable in closed form.
DosTable uniform_dos(double e_lo, double e_hi, std::size_t bins) {
  DosTable table;
  const double width = (e_hi - e_lo) / static_cast<double>(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    table.energy.push_back(e_lo + (static_cast<double>(b) + 0.5) * width);
    table.ln_g.push_back(0.0);
  }
  return table;
}

double truncated_exp_mean(double beta, double a, double b) {
  // mean of E with density ~ e^{-beta E} on [a, b]
  const double w = b - a;
  const double x = beta * w;
  // <E> = a + w * (1/x - e^{-x}/(1 - e^{-x}))
  return a + w * (1.0 / x - std::exp(-x) / (1.0 - std::exp(-x)));
}

TEST(Observables, UniformDosInternalEnergyMatchesClosedForm) {
  const DosTable table = uniform_dos(-1.0, 1.0, 2000);
  for (double t : {500.0, 2000.0, 20000.0, 200000.0}) {
    const double beta = units::beta_from_kelvin(t);
    const double expected = truncated_exp_mean(beta, -1.0, 1.0);
    EXPECT_NEAR(observables_at(table, t).internal_energy, expected, 2e-3)
        << "T=" << t;
  }
}

TEST(Observables, InfiniteTemperatureLimitIsMidpoint) {
  const DosTable table = uniform_dos(-2.0, 4.0, 1000);
  const Observables obs = observables_at(table, 1e9);
  EXPECT_NEAR(obs.internal_energy, 1.0, 1e-3);
  // c -> Var(E)/ (k T^2) -> 0.
  EXPECT_LT(obs.specific_heat, 1e-10);
}

TEST(Observables, ZeroTemperatureLimitIsGroundState) {
  const DosTable table = uniform_dos(-1.0, 1.0, 500);
  const Observables obs = observables_at(table, 1.0);  // k_B T = 6.3e-6 Ry
  EXPECT_NEAR(obs.internal_energy, -1.0, 5e-3);
  EXPECT_TRUE(std::isfinite(obs.free_energy));
  EXPECT_TRUE(std::isfinite(obs.entropy));
}

TEST(Observables, SpecificHeatIsEnergyVarianceOverKT2) {
  // Two-level system: g = {1, 1} at energies 0 and d.
  DosTable table;
  table.energy = {0.0, 1e-3};
  table.ln_g = {0.0, 0.0};
  const double t = 1e-3 / units::k_boltzmann_ry;  // beta d = 1
  const Observables obs = observables_at(table, t);
  const double p1 = std::exp(-1.0) / (1.0 + std::exp(-1.0));
  const double mean = p1 * 1e-3;
  const double var = p1 * (1.0 - p1) * 1e-6;
  EXPECT_NEAR(obs.internal_energy, mean, 1e-9);
  EXPECT_NEAR(obs.specific_heat, var / (units::k_boltzmann_ry * t * t), 1e-12);
}

TEST(Observables, ThermodynamicIdentityUMinusFEqualsTS) {
  const DosTable table = uniform_dos(-1.0, 1.0, 300);
  for (double t : {300.0, 3000.0, 30000.0}) {
    const Observables obs = observables_at(table, t);
    EXPECT_NEAR(obs.internal_energy - obs.free_energy, t * obs.entropy,
                1e-12);
  }
}

TEST(Observables, FreeEnergyDecreasesWithTemperature) {
  // dF/dT = -S < 0 whenever more than one state is thermally accessible
  // (the shape of the paper's Fig. 5).
  const DosTable table = uniform_dos(-1.0, 1.0, 300);
  const auto sweep = temperature_sweep(table, 200.0, 3000.0, 40);
  for (std::size_t i = 1; i < sweep.size(); ++i)
    EXPECT_LT(sweep[i].free_energy, sweep[i - 1].free_energy);
}

TEST(Observables, EntropyOfUnnormalizedDosIsShiftedNotBroken) {
  // Shifting ln g by a constant (the unknown ln g0 of eq. 9) must leave U
  // and c exactly invariant and shift F by -kT * ln g0 (paper eq. 10).
  const DosTable base = uniform_dos(-1.0, 1.0, 300);
  DosTable shifted = base;
  for (double& v : shifted.ln_g) v += 7.5;
  for (double t : {400.0, 4000.0}) {
    const Observables a = observables_at(base, t);
    const Observables b = observables_at(shifted, t);
    EXPECT_NEAR(a.internal_energy, b.internal_energy, 1e-12);
    EXPECT_NEAR(a.specific_heat, b.specific_heat, 1e-15);
    EXPECT_NEAR(b.free_energy,
                a.free_energy - units::k_boltzmann_ry * t * 7.5, 1e-12);
  }
}

TEST(Observables, HugeLnGValuesAreStable) {
  // ln g of large systems reaches thousands; log-sum-exp must not overflow.
  DosTable table = uniform_dos(-3.0, 0.3, 200);
  for (std::size_t i = 0; i < table.ln_g.size(); ++i)
    table.ln_g[i] = 5000.0 * std::sin(0.01 * static_cast<double>(i)) + 20000.0;
  const Observables obs = observables_at(table, 900.0);
  EXPECT_TRUE(std::isfinite(obs.internal_energy));
  EXPECT_TRUE(std::isfinite(obs.free_energy));
  EXPECT_TRUE(std::isfinite(obs.specific_heat));
  EXPECT_GE(obs.specific_heat, 0.0);
}

TEST(TemperatureSweep, CoversRangeInclusive) {
  const DosTable table = uniform_dos(-1.0, 1.0, 100);
  const auto sweep = temperature_sweep(table, 100.0, 1100.0, 11);
  ASSERT_EQ(sweep.size(), 11u);
  EXPECT_DOUBLE_EQ(sweep.front().temperature, 100.0);
  EXPECT_DOUBLE_EQ(sweep.back().temperature, 1100.0);
  EXPECT_NEAR(sweep[5].temperature, 600.0, 1e-9);
}

TEST(CurieEstimate, FindsPeakOfSyntheticSchottkyAnomaly) {
  // Two-level DOS: specific-heat (Schottky) peak at k_B T ~ 0.417 d.
  DosTable table;
  table.energy = {0.0, 1e-2};
  table.ln_g = {0.0, 0.0};
  const CurieEstimate estimate =
      estimate_curie_temperature(table, 100.0, 20000.0, 400, 0.5);
  const double expected_t = 0.4168 * 1e-2 / units::k_boltzmann_ry;
  EXPECT_NEAR(estimate.tc, expected_t, 0.01 * expected_t);
  EXPECT_GT(estimate.peak_height, 0.0);
}

TEST(CurieEstimate, RefinementBeatsCoarseGrid) {
  DosTable table;
  table.energy = {0.0, 1e-2};
  table.ln_g = {0.0, 0.0};
  // Deliberately coarse scan: golden-section refinement must still land on
  // the peak to sub-Kelvin precision.
  const CurieEstimate coarse =
      estimate_curie_temperature(table, 100.0, 20000.0, 10, 0.1);
  const CurieEstimate fine =
      estimate_curie_temperature(table, 100.0, 20000.0, 1000, 0.1);
  EXPECT_NEAR(coarse.tc, fine.tc, 30.0);
}

TEST(Observables, ContractViolations) {
  const DosTable table = uniform_dos(-1.0, 1.0, 10);
  EXPECT_THROW(observables_at(table, 0.0), ContractError);
  EXPECT_THROW(observables_at(table, -5.0), ContractError);
  EXPECT_THROW(temperature_sweep(table, 500.0, 100.0, 5), ContractError);
  EXPECT_THROW(temperature_sweep(table, 100.0, 500.0, 1), ContractError);
  DosTable empty;
  EXPECT_THROW(observables_at(empty, 300.0), ContractError);
}

}  // namespace
}  // namespace wlsms::thermo
