// Tests for the speculative mixed-fidelity decorator (wl/speculator.hpp):
// the bit-identity property (band 0 / audit 1.0 degenerates to the plain
// driver, compared with == over synchronous AND distributed services), the
// retry accounting regression (failed-result resubmissions must not
// double-count in spec.hit_rate), the online J_ij refit cadence, and the
// error-budget trip + recovery path. Services are built through
// comm::make_energy_service — the same composition the CLI uses.
#include "wl/speculator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "comm/factory.hpp"
#include "common/error.hpp"
#include "lattice/cluster.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"
#include "lsms/solver.hpp"
#include "wl/driver.hpp"
#include "wl/energy_service.hpp"

namespace wlsms::wl {
namespace {

std::vector<double> fe16_couplings() {
  std::vector<double> j = lsms::fe_reference_exchange();
  for (double& v : j) v *= lsms::fe_exchange_energy_scale;
  return j;
}

HeisenbergEnergy fe16_energy() {
  return HeisenbergEnergy(heisenberg::HeisenbergModel(
      lattice::make_fe_supercell(2), fe16_couplings()));
}

WangLandauConfig fe16_config(const HeisenbergEnergy& energy,
                             std::uint64_t max_steps) {
  Rng rng(5);
  WangLandauConfig config;
  config.grid =
      thermal_window(energy, energy.model().ferromagnetic_energy(), 150.0, rng);
  config.n_walkers = 8;
  config.check_interval = 2000;
  config.flatness = 0.8;
  config.max_iteration_steps = 1000000;
  config.max_steps = max_steps;
  return config;
}

struct RunOutput {
  std::vector<double> ln_g;
  std::vector<std::uint64_t> histogram;
  DriverStats stats;
  SpeculationStats speculation;
};

RunOutput run_driver(EnergyService& service, std::size_t n_sites,
                     const WangLandauConfig& config, std::uint64_t seed) {
  WlDriver driver(n_sites, service, config,
                  std::make_unique<HalvingSchedule>(1.0, 1e-8), Rng(seed));
  RunOutput out;
  out.stats = driver.run();
  out.ln_g = driver.dos().ln_g_values();
  out.histogram = driver.dos().histogram();
  if (const auto* speculative =
          dynamic_cast<const SpeculativeEnergyService*>(&service))
    out.speculation = speculative->stats();
  return out;
}

// --- Bit-identity property: band 0 / audit 1.0 == plain driver -----------

TEST(Speculate, BandZeroAuditOneIsBitIdenticalOverSynchronousService) {
  const lattice::Structure structure = lattice::make_fe_supercell(2);
  HeisenbergEnergy energy = fe16_energy();
  const WangLandauConfig config = fe16_config(energy, 20000);

  comm::EnergyServiceSpec plain;
  plain.kind = comm::ServiceKind::kSynchronous;
  plain.energy = &energy;
  const auto plain_service = comm::make_energy_service(plain);
  const RunOutput a = run_driver(*plain_service, 16, config, 9001);

  comm::EnergyServiceSpec spec = plain;
  spec.speculate = true;
  spec.speculation.band = 0.0;
  spec.speculation.audit_fraction = 1.0;
  spec.speculation_structure = &structure;
  const auto spec_service = comm::make_energy_service(spec);
  const RunOutput b = run_driver(*spec_service, 16, config, 9001);

  // Bit-for-bit: the decorator dispatched every hinted move exactly, in
  // submission order, consumed no RNG, and returned authoritative energies.
  EXPECT_EQ(a.ln_g, b.ln_g);
  EXPECT_EQ(a.histogram, b.histogram);
  EXPECT_EQ(a.stats.total_steps, b.stats.total_steps);
  EXPECT_EQ(a.stats.accepted_steps, b.stats.accepted_steps);
  EXPECT_EQ(a.stats.out_of_range, b.stats.out_of_range);

  // With audit_fraction 1 every screened move was audited, none speculated.
  EXPECT_GT(b.speculation.proposed, 0u);
  EXPECT_EQ(b.speculation.speculated, 0u);
  EXPECT_EQ(b.speculation.hit_rate(), 0.0);
}

TEST(Speculate, BandZeroAuditOneIsBitIdenticalOverDistributedService) {
  // One walker + one group keeps the in-process distributed service's
  // retrieve order deterministic, so == comparison across runs is sound.
  const auto solver = std::make_shared<const lsms::LsmsSolver>(
      lattice::make_fe_supercell(1), lsms::fe_lsms_parameters_fast());
  const LsmsEnergy energy(solver);
  const std::size_t n = solver->n_atoms();

  Rng rng(3);
  const double e_fm = energy.total_energy(spin::MomentConfiguration::ferromagnetic(n));
  double e_max = -1e300;
  for (int k = 0; k < 8; ++k)
    e_max = std::max(
        e_max, energy.total_energy(spin::MomentConfiguration::random(n, rng)));

  WangLandauConfig config;
  config.grid.e_min = e_fm - 0.002;
  config.grid.e_max = e_max + 0.01;
  config.grid.bins = 48;
  config.grid.kernel_width_fraction = 0.5 / 48.0;
  config.n_walkers = 1;
  config.max_steps = 400;
  config.check_interval = 100;

  comm::EnergyServiceSpec plain;
  plain.kind = comm::ServiceKind::kDistributed;
  plain.energy = &energy;
  plain.distributed.n_groups = 1;
  plain.distributed.group_size = 1;
  plain.distributed.transport = comm::Transport::kInProcess;
  RunOutput a;
  {
    const auto service = comm::make_energy_service(plain);
    a = run_driver(*service, n, config, 17);
  }

  comm::EnergyServiceSpec spec = plain;
  spec.speculate = true;
  spec.speculation.band = 0.0;
  spec.speculation.audit_fraction = 1.0;
  // No speculation_structure: the factory derives it from the LsmsEnergy.
  RunOutput b;
  {
    const auto service = comm::make_energy_service(spec);
    b = run_driver(*service, n, config, 17);
  }

  EXPECT_EQ(a.ln_g, b.ln_g);
  EXPECT_EQ(a.histogram, b.histogram);
  EXPECT_EQ(a.stats.total_steps, b.stats.total_steps);
  EXPECT_EQ(a.stats.accepted_steps, b.stats.accepted_steps);
  EXPECT_GT(b.speculation.proposed, 0u);
  EXPECT_EQ(b.speculation.speculated, 0u);
}

// --- Retry accounting: resubmissions never re-count as proposals ----------

TEST(Speculate, FailedResultRetriesDoNotInflateHitRate) {
  const lattice::Structure structure = lattice::make_fe_supercell(2);
  HeisenbergEnergy energy = fe16_energy();
  const WangLandauConfig config = fe16_config(energy, 20000);

  comm::EnergyServiceSpec spec;
  spec.kind = comm::ServiceKind::kSynchronous;
  spec.energy = &energy;
  spec.failure_probability = 0.1;  // inner decorator: hits never fail
  spec.speculate = true;
  spec.speculation.band = 2.0;
  spec.speculation.audit_fraction = 0.1;
  spec.speculation.min_audits = 8;
  spec.speculation.initial_j = fe16_couplings();
  spec.speculation_structure = &structure;
  const auto service = comm::make_energy_service(spec);
  const RunOutput out = run_driver(*service, 16, config, 23);
  const SpeculationStats& s = out.speculation;

  // At a 10 % loss rate resubmissions dwarf the walker count, so if a retry
  // were re-counted as a proposal the bound below would be violated by a
  // wide margin. Each unique proposal yields at most one processed result;
  // only requests still in flight at drain time (<= one per walker) are
  // proposed but never processed.
  ASSERT_GT(out.stats.resubmissions, config.n_walkers);
  EXPECT_EQ(s.retries, out.stats.resubmissions);
  EXPECT_GE(s.proposed + s.forwarded,
            static_cast<std::uint64_t>(out.stats.total_steps));
  EXPECT_LE(s.proposed + s.forwarded,
            static_cast<std::uint64_t>(out.stats.total_steps) +
                2 * config.n_walkers);

  // Role ledger: every screened move took exactly one path.
  EXPECT_EQ(s.proposed, s.speculated + s.audits + s.boundary_exact +
                            s.warmup_exact + s.tripped_exact);
  EXPECT_GE(s.hit_rate(), 0.0);
  EXPECT_LE(s.hit_rate(), 1.0);
}

// --- Speculator unit level: refit cadence, trip, recovery -----------------

/// Drives the decorator directly with hand-built hinted requests so the
/// residual stream is fully controlled (the driver is not involved).
struct Harness {
  lattice::Structure structure = lattice::make_fe_supercell(2);
  HeisenbergEnergy energy{
      heisenberg::HeisenbergModel(structure, fe16_couplings())};
  DosGrid dos;
  SpeculativeEnergyService service;
  Rng rng{71};
  std::uint64_t next_ticket = 1;

  explicit Harness(SpeculationConfig config)
      : dos(DosGridConfig{-1.0, 1.0, 101, 0.0025}),
        service(std::make_unique<SynchronousEnergyService>(energy),
                Speculator(structure, std::move(config))) {
    service.attach_dos(&dos);
  }

  /// Submits one single-site move from a fresh random configuration and
  /// retrieves its result. `energy_offset` shifts the hint's current_energy
  /// away from the truth, forcing a residual of that size.
  EnergyResult step(double energy_offset = 0.0) {
    spin::MomentConfiguration base = spin::MomentConfiguration::random(16, rng);
    const std::size_t site = rng.uniform_index(16);
    const Vec3 old_direction = base[site];
    const double e_old = energy.total_energy(base);
    base.set(site, spin::MomentConfiguration::random(1, rng)[0]);
    EnergyRequest request{0, next_ticket++, base};
    request.hint.valid = true;
    request.hint.current_energy = e_old + energy_offset;
    request.hint.site = site;
    request.hint.old_direction = old_direction;
    service.submit(std::move(request));
    return service.retrieve();
  }
};

TEST(Speculate, RefitCadenceLearnsCouplingsFromScratch) {
  SpeculationConfig config;
  config.refit_interval = 8;
  config.min_audits = 1000000;  // stay in warmup: every move measured
  config.residual_window = 1000000;
  config.initial_j = {};  // zero couplings: surrogate knows nothing
  Harness h(config);

  for (int k = 0; k < 7; ++k) h.step();
  EXPECT_EQ(h.service.stats().refits, 0u);  // cadence not reached yet
  h.step();
  // 8th measurement: refit runs, and against an exactly-Heisenberg backend
  // the regression recovers the true couplings (and is adopted, since its
  // in-window rms beats the zero-coupling model's).
  ASSERT_EQ(h.service.stats().refits, 1u);
  const std::vector<double> truth = fe16_couplings();
  const std::vector<double>& fitted = h.service.speculator().j_shells();
  ASSERT_EQ(fitted.size(), truth.size());
  for (std::size_t s = 0; s < truth.size(); ++s)
    EXPECT_NEAR(fitted[s], truth[s], 1e-8);

  for (int k = 0; k < 16; ++k) h.step();
  EXPECT_EQ(h.service.stats().refits + h.service.stats().refits_rejected, 3u);
  // Post-adoption residuals are at numerical noise level.
  EXPECT_LT(h.service.speculator().residual_rms(), 1e-6);
}

TEST(Speculate, ErrorBudgetTripsToExactOnlyAndRecovers) {
  SpeculationConfig config;
  config.error_budget = 1e-6;
  config.min_audits = 4;
  config.refit_interval = 0;  // isolate the trip logic from refits
  config.audit_fraction = 0.0;
  config.initial_j = fe16_couplings();  // perfect surrogate: honest hints
                                        // give ~0 residual
  Harness h(config);

  // Warmup with poisoned hints: every residual is ~1e-3, far over budget.
  for (int k = 0; k < 4; ++k) h.step(1e-3);
  EXPECT_TRUE(h.service.speculator().tripped());
  EXPECT_EQ(h.service.stats().trips, 1u);
  EXPECT_EQ(h.service.stats().untrips, 0u);

  // While tripped every move is dispatched exactly (role ledger moves only
  // through tripped_exact), and honest hints refill the residual window.
  const std::uint64_t speculated_before = h.service.stats().speculated;
  for (int k = 0; k < 4; ++k) h.step();
  EXPECT_EQ(h.service.stats().speculated, speculated_before);
  EXPECT_GE(h.service.stats().tripped_exact, 4u);

  // A fresh window inside the budget un-trips the service...
  EXPECT_FALSE(h.service.speculator().tripped());
  EXPECT_EQ(h.service.stats().untrips, 1u);

  // ...and with a flat ln g (fresh grid) every subsequent in-window move is
  // a deterministic accept, so the surrogate resolves it without an exact
  // call and returns its predicted energy.
  const EnergyResult result = h.step();
  EXPECT_GT(h.service.stats().speculated, speculated_before);
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(h.service.outstanding(), 0u);
}

TEST(Speculate, AuditCadenceIsDeterministicAndCountsOnce) {
  SpeculationConfig config;
  config.min_audits = 4;
  config.audit_fraction = 0.5;  // every second resolvable move audited
  config.refit_interval = 0;
  config.error_budget = 0.0;
  config.initial_j = fe16_couplings();
  Harness h(config);

  for (int k = 0; k < 4; ++k) h.step();  // warmup
  const std::uint64_t before = h.service.stats().proposed;
  for (int k = 0; k < 10; ++k) h.step();
  const SpeculationStats& s = h.service.stats();
  EXPECT_EQ(s.proposed - before, 10u);
  // Flat fresh ln g: every move resolvable, so the 0.5 cadence alternates
  // audit / hit exactly.
  EXPECT_EQ(s.audits, 5u);
  EXPECT_EQ(s.speculated, 5u);
  EXPECT_EQ(s.proposed, s.speculated + s.audits + s.boundary_exact +
                            s.warmup_exact + s.tripped_exact);
}

TEST(Speculate, ConfigValidationRejectsNonsense) {
  const lattice::Structure structure = lattice::make_fe_supercell(1);
  SpeculationConfig bad_band;
  bad_band.band = -1.0;
  EXPECT_THROW(Speculator(structure, bad_band), Error);
  SpeculationConfig bad_audit;
  bad_audit.audit_fraction = 1.5;
  EXPECT_THROW(Speculator(structure, bad_audit), Error);
  SpeculationConfig bad_shells;
  bad_shells.n_shells = 0;
  EXPECT_THROW(Speculator(structure, bad_shells), Error);
}

}  // namespace
}  // namespace wlsms::wl
