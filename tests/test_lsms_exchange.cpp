// Tests for the effective-exchange extraction (the substrate -> surrogate
// bridge of DESIGN.md §2).
#include "lsms/exchange.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "heisenberg/heisenberg.hpp"
#include "lsms/fe_parameters.hpp"

namespace wlsms::lsms {
namespace {

TEST(Bonds, CountsMatchBccCoordination) {
  // 16-atom bcc cell: shell 1 has 16*8/2 = 64 bonds, shell 2 has 16*6/2 = 48.
  std::vector<double> radii;
  const auto bonds =
      enumerate_bonds(lattice::make_fe_supercell(2), 2, &radii);
  std::size_t shell1 = 0;
  std::size_t shell2 = 0;
  for (const ExchangeBond& b : bonds) {
    if (b.shell == 0) ++shell1;
    if (b.shell == 1) ++shell2;
  }
  EXPECT_EQ(shell1, 64u);
  EXPECT_EQ(shell2, 48u);
  ASSERT_EQ(radii.size(), 2u);
  EXPECT_LT(radii[0], radii[1]);
}

TEST(Bonds, NoSelfBonds) {
  const auto bonds =
      enumerate_bonds(lattice::make_fe_supercell(2), 2, nullptr);
  for (const ExchangeBond& b : bonds) EXPECT_NE(b.site_a, b.site_b);
}

class ExchangeExtraction : public ::testing::Test {
 protected:
  static const ExtractedExchange& extraction() {
    static const ExtractedExchange cached = [] {
      LsmsSolver solver(lattice::make_fe_supercell(2),
                        fe_lsms_parameters_fast());
      Rng rng(42);
      return extract_exchange(solver, 2, 24, rng);
    }();
    return cached;
  }
};

TEST_F(ExchangeExtraction, NearestNeighborCouplingIsFerromagnetic) {
  // The calibrated Fe substrate must come out ferromagnetic (J1 > 0); this
  // is the calibration invariant behind fe_scattering_parameters().
  EXPECT_GT(extraction().shells[0].j, 0.0);
}

TEST_F(ExchangeExtraction, FitResidualSmallComparedToEnergyScale) {
  const ExtractedExchange& ex = extraction();
  double scale = 0.0;
  for (const ShellExchange& s : ex.shells)
    scale += std::abs(s.j) * static_cast<double>(s.bonds);
  EXPECT_LT(ex.fit_rms, 0.15 * scale);
}

TEST_F(ExchangeExtraction, ModelPredictsLsmsEnergyDifferences) {
  // The fitted bilinear model reproduces substrate energy *differences* of
  // fresh configurations to within a few fit residuals.
  LsmsSolver solver(lattice::make_fe_supercell(2), fe_lsms_parameters_fast());
  Rng rng(7);
  const ExtractedExchange& ex = extraction();
  const auto a = spin::MomentConfiguration::random(16, rng);
  const auto b = spin::MomentConfiguration::random(16, rng);
  const double lsms_diff = solver.energy(a) - solver.energy(b);
  const double model_diff = ex.energy(a) - ex.energy(b);
  EXPECT_NEAR(model_diff, lsms_diff, 5.0 * ex.fit_rms);
}

TEST_F(ExchangeExtraction, EnergyOfFmEqualsOffsetMinusBondSum) {
  const ExtractedExchange& ex = extraction();
  double expected = ex.e0;
  for (const ExchangeBond& b : ex.bond_list) expected -= ex.shells[b.shell].j;
  EXPECT_NEAR(ex.energy(spin::MomentConfiguration::ferromagnetic(16)),
              expected, 1e-12);
}

TEST_F(ExchangeExtraction, PairEmbeddingAgreesOnSign) {
  // The four-state estimator probes a nearest-neighbour pair; it must agree
  // with the regression on the ferromagnetic sign (magnitudes differ by the
  // image multiplicity of the small cell).
  LsmsSolver solver(lattice::make_fe_supercell(2), fe_lsms_parameters_fast());
  std::vector<double> radii;
  const auto bonds = enumerate_bonds(solver.structure(), 1, &radii);
  ASSERT_FALSE(bonds.empty());
  const double j_pair =
      pair_exchange_embedding(solver, bonds[0].site_a, bonds[0].site_b);
  EXPECT_GT(j_pair, 0.0);
}

TEST_F(ExchangeExtraction, ReferenceValuesHaveDocumentedSigns) {
  // fe_reference_exchange() was extracted at production fidelity; both kept
  // shells are ferromagnetic by construction (DESIGN.md §2).
  const std::vector<double> reference = fe_reference_exchange();
  ASSERT_EQ(reference.size(), fe_surrogate_shells);
  for (double j : reference) EXPECT_GT(j, 0.0);
  EXPECT_GT(reference[0], reference[1]);  // J1 dominates
}

TEST(Exchange, JValuesAccessor) {
  ExtractedExchange ex;
  ex.shells = {{1.0, 4, 0.5}, {2.0, 8, -0.1}};
  EXPECT_EQ(ex.j_values(), (std::vector<double>{0.5, -0.1}));
}

TEST(Exchange, TooFewSamplesThrows) {
  LsmsSolver solver(lattice::make_fe_supercell(2), fe_lsms_parameters_fast());
  Rng rng(1);
  EXPECT_THROW(extract_exchange(solver, 4, 3, rng), ContractError);
}

}  // namespace
}  // namespace wlsms::lsms
