// Tests for moment configurations.
#include "spin/moments.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace wlsms::spin {
namespace {

TEST(Moments, FerromagneticAlongZ) {
  const auto c = MomentConfiguration::ferromagnetic(10);
  EXPECT_EQ(c.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(c[i], (Vec3{0.0, 0.0, 1.0}));
  EXPECT_DOUBLE_EQ(c.magnetization(), 1.0);
  EXPECT_DOUBLE_EQ(c.magnetization_z(), 1.0);
}

TEST(Moments, RandomIsUnitLengthAndDisordered) {
  Rng rng(1);
  const auto c = MomentConfiguration::random(500, rng);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i].norm(), 1.0, 1e-12);
  EXPECT_LT(c.magnetization(), 0.25);  // ~N^{-1/2} for 500 moments
}

TEST(Moments, StaggeredBalancedHasZeroMagnetization) {
  std::vector<bool> sub(8);
  for (std::size_t i = 0; i < 8; ++i) sub[i] = (i % 2 == 1);
  const auto c = MomentConfiguration::staggered(sub);
  EXPECT_NEAR(c.magnetization(), 0.0, 1e-14);
  EXPECT_EQ(c[0], (Vec3{0.0, 0.0, 1.0}));
  EXPECT_EQ(c[1], (Vec3{0.0, 0.0, -1.0}));
}

TEST(Moments, FromDirectionsNormalizes) {
  const auto c =
      MomentConfiguration::from_directions({{2.0, 0.0, 0.0}, {0.0, 0.0, -5.0}});
  EXPECT_EQ(c[0], (Vec3{1.0, 0.0, 0.0}));
  EXPECT_EQ(c[1], (Vec3{0.0, 0.0, -1.0}));
}

TEST(Moments, SetNormalizesInput) {
  auto c = MomentConfiguration::ferromagnetic(3);
  c.set(1, {0.0, 3.0, 4.0});
  EXPECT_NEAR(c[1].norm(), 1.0, 1e-14);
  EXPECT_NEAR(c[1].y, 0.6, 1e-14);
  EXPECT_NEAR(c[1].z, 0.8, 1e-14);
}

TEST(Moments, TotalMomentAccumulates) {
  auto c = MomentConfiguration::ferromagnetic(4);
  c.set(0, {0.0, 0.0, -1.0});
  const Vec3 total = c.total_moment();
  EXPECT_NEAR(total.z, 2.0, 1e-14);
  EXPECT_DOUBLE_EQ(c.magnetization_z(), 0.5);
}

TEST(Moments, MagnetizationZCanBeNegative) {
  std::vector<bool> sub(4, true);
  const auto c = MomentConfiguration::staggered(sub);
  EXPECT_DOUBLE_EQ(c.magnetization_z(), -1.0);
}

TEST(Moments, ContractViolations) {
  auto c = MomentConfiguration::ferromagnetic(2);
  EXPECT_THROW(c.set(5, {0, 0, 1}), ContractError);
  EXPECT_THROW(c.set(0, {0, 0, 0}), ContractError);
  EXPECT_THROW(MomentConfiguration::ferromagnetic(0), ContractError);
  EXPECT_THROW(MomentConfiguration::staggered({}), ContractError);
  EXPECT_THROW(MomentConfiguration::from_directions({{0.0, 0.0, 0.0}}),
               ContractError);
}

}  // namespace
}  // namespace wlsms::spin
