// Tests for the Binder-cumulant finite-size analysis (paper §III: the
// finite-size-scaling route to the bulk Curie temperature).
#include "thermo/binder.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "heisenberg/heisenberg.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"

namespace wlsms::thermo {
namespace {

wl::HeisenbergEnergy fe_surrogate(std::size_t n_cells) {
  std::vector<double> j = lsms::fe_reference_exchange();
  for (double& v : j) v *= lsms::fe_exchange_energy_scale;
  return wl::HeisenbergEnergy(
      heisenberg::HeisenbergModel(lattice::make_fe_supercell(n_cells), j));
}

class BinderSweep16 : public ::testing::Test {
 protected:
  static const std::vector<CumulantPoint>& sweep() {
    static const std::vector<CumulantPoint> cached = [] {
      const wl::HeisenbergEnergy energy = fe_surrogate(2);
      CumulantConfig config;
      config.thermalization_steps = 100000;
      config.measurement_steps = 400000;
      config.measure_interval = 16;
      Rng rng(3);
      return binder_cumulant_sweep(
          energy, {200.0, 600.0, 1000.0, 1600.0, 2400.0, 4000.0}, config,
          rng);
    }();
    return cached;
  }
};

TEST_F(BinderSweep16, MomentsAreOrderedAndBounded) {
  for (const CumulantPoint& p : sweep()) {
    EXPECT_GT(p.m2, 0.0);
    EXPECT_LE(p.m2, 1.0);
    EXPECT_GT(p.m4, 0.0);
    EXPECT_LE(p.m4, 1.0);
    EXPECT_GE(p.m4, p.m2 * p.m2);  // Jensen: <m^4> >= <m^2>^2
  }
}

TEST_F(BinderSweep16, OrderedPhaseGivesTwoThirds) {
  // Deep in the ferromagnetic phase m is sharply peaked: U4 -> 2/3.
  EXPECT_NEAR(sweep().front().binder_u4, 2.0 / 3.0, 0.02);
}

TEST_F(BinderSweep16, CumulantDecreasesTowardDisorder) {
  // U4 falls with temperature toward the disordered-phase value.
  const auto& points = sweep();
  EXPECT_GT(points[0].binder_u4, points[3].binder_u4);
  EXPECT_GT(points[3].binder_u4, points.back().binder_u4);
  // For a finite system <m> never vanishes, but U4 at 4000 K is well below
  // the ordered-phase 2/3.
  EXPECT_LT(points.back().binder_u4, 0.55);
}

TEST_F(BinderSweep16, ReturnsRequestedOrder) {
  EXPECT_DOUBLE_EQ(sweep()[0].temperature, 200.0);
  EXPECT_DOUBLE_EQ(sweep().back().temperature, 4000.0);
}

TEST(BinderCrossing, InterpolatesTheSignChange) {
  // Synthetic curves: the small system has the larger U4 above the
  // crossing and the smaller one below, crossing at T = 1000.
  std::vector<CumulantPoint> small_sys;
  std::vector<CumulantPoint> large_sys;
  for (double t : {800.0, 900.0, 1100.0, 1200.0}) {
    CumulantPoint s;
    s.temperature = t;
    s.binder_u4 = 0.6 - 0.5e-4 * (t - 1000.0);
    CumulantPoint l;
    l.temperature = t;
    l.binder_u4 = 0.6 - 2.0e-4 * (t - 1000.0);
    small_sys.push_back(s);
    large_sys.push_back(l);
  }
  EXPECT_NEAR(binder_crossing(small_sys, large_sys), 1000.0, 1e-9);
}

TEST(BinderCrossing, NoCrossingReturnsNegative) {
  std::vector<CumulantPoint> a(3);
  std::vector<CumulantPoint> b(3);
  for (int i = 0; i < 3; ++i) {
    a[static_cast<std::size_t>(i)].temperature = 100.0 * (i + 1);
    b[static_cast<std::size_t>(i)].temperature = 100.0 * (i + 1);
    a[static_cast<std::size_t>(i)].binder_u4 = 0.6;
    b[static_cast<std::size_t>(i)].binder_u4 = 0.5;  // always below
  }
  EXPECT_LT(binder_crossing(a, b), 0.0);
}

TEST(BinderCrossing, HandlesUnsortedTemperatureGrids) {
  std::vector<CumulantPoint> small_sys(2);
  std::vector<CumulantPoint> large_sys(2);
  // Given in descending order; crossing at 550.
  small_sys[0] = {600.0, 0, 0, 0.55};
  small_sys[1] = {500.0, 0, 0, 0.65};
  large_sys[0] = {600.0, 0, 0, 0.45};
  large_sys[1] = {500.0, 0, 0, 0.75};
  const double crossing = binder_crossing(small_sys, large_sys);
  EXPECT_NEAR(crossing, 550.0, 1e-9);
}

TEST(BinderSweep, ContractViolations) {
  const wl::HeisenbergEnergy energy = fe_surrogate(2);
  CumulantConfig config;
  Rng rng(1);
  EXPECT_THROW(binder_cumulant_sweep(energy, {}, config, rng), ContractError);
  EXPECT_THROW(binder_cumulant_sweep(energy, {-5.0}, config, rng),
               ContractError);
  std::vector<CumulantPoint> a(2), b(3);
  EXPECT_THROW(binder_crossing(a, b), ContractError);
}

}  // namespace
}  // namespace wlsms::thermo
