// Tests for the CSV writer and table formatter behind the bench harness.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/csv.hpp"
#include "io/table.hpp"

namespace wlsms::io {
namespace {

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "wlsms_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b", "c"});
    csv.row({1.0, 2.5, -3.0});
    csv.row({4.0, 5.0, 6.0});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b,c");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5,-3");
  std::getline(in, line);
  EXPECT_EQ(line, "4,5,6");
  std::remove(path.c_str());
}

TEST(Csv, RowWidthMismatchThrows) {
  const std::string path = ::testing::TempDir() + "wlsms_csv_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.row({1.0}), ContractError);
  std::remove(path.c_str());
}

TEST(Csv, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

TEST(Csv, EmptyHeaderThrows) {
  EXPECT_THROW(CsvWriter(::testing::TempDir() + "e.csv", {}), ContractError);
}

TEST(Table, RendersAlignedColumns) {
  TextTable table({"atoms", "cores"});
  table.row({"16", "278"});
  table.row({"250", "125250"});
  const std::string out = table.render();
  std::istringstream lines(out);
  std::string header, underline, row1, row2;
  std::getline(lines, header);
  std::getline(lines, underline);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(header.size(), row1.size());
  EXPECT_EQ(row1.size(), row2.size());
  EXPECT_EQ(underline.size(), header.size());
  EXPECT_NE(row2.find("125250"), std::string::npos);
  // Right alignment: "16" ends where "250" ends.
  EXPECT_EQ(row1.find("16") + 2, row2.find("250") + 3);
}

TEST(Table, RowWidthMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.row({"1"}), ContractError);
}

TEST(FormatDouble, RespectsPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
  EXPECT_EQ(format_double(2.5, 4), "2.5000");
}

TEST(FormatFlops, PicksSensibleUnits) {
  EXPECT_EQ(format_flops(1.029e15), "1.029 PFlop/s");
  EXPECT_EQ(format_flops(17.6e12), "17.6 TFlop/s");
  EXPECT_EQ(format_flops(6.97e9), "6.97 GFlop/s");
  EXPECT_EQ(format_flops(5.0e6), "5.00 MFlop/s");
}

}  // namespace
}  // namespace wlsms::io
