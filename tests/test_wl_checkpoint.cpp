// Tests for checkpoint/restart of Wang-Landau state.
#include "wl/checkpoint.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cstdio>
#include <sstream>

#include "common/rng.hpp"
#include "common/serial.hpp"

namespace wlsms::wl {
namespace {

Checkpoint sample_checkpoint() {
  DosGridConfig grid;
  grid.e_min = -2.0;
  grid.e_max = 1.0;
  grid.bins = 50;
  grid.kernel_width_fraction = 0.004;
  DosGrid dos(grid);
  Rng rng(3);
  for (int k = 0; k < 500; ++k)
    dos.visit(rng.uniform(grid.e_min, grid.e_max), 0.25);

  std::vector<spin::MomentConfiguration> walkers;
  for (unsigned w = 0; w < 3; ++w)
    walkers.push_back(spin::MomentConfiguration::random(8, rng));
  return make_checkpoint(dos, 0.125, 12345, std::move(walkers));
}

TEST(Checkpoint, StreamRoundTripPreservesEverything) {
  const Checkpoint original = sample_checkpoint();
  std::stringstream stream;
  write_checkpoint(stream, original);
  const Checkpoint loaded = read_checkpoint(stream);

  EXPECT_EQ(loaded.grid.bins, original.grid.bins);
  EXPECT_DOUBLE_EQ(loaded.grid.e_min, original.grid.e_min);
  EXPECT_DOUBLE_EQ(loaded.grid.e_max, original.grid.e_max);
  EXPECT_DOUBLE_EQ(loaded.grid.kernel_width_fraction,
                   original.grid.kernel_width_fraction);
  EXPECT_DOUBLE_EQ(loaded.gamma, original.gamma);
  EXPECT_EQ(loaded.total_steps, original.total_steps);
  EXPECT_EQ(loaded.ln_g, original.ln_g);
  EXPECT_EQ(loaded.histogram, original.histogram);
  EXPECT_EQ(loaded.visited, original.visited);
  ASSERT_EQ(loaded.walkers.size(), original.walkers.size());
  // The binary schema stores raw IEEE-754 bytes and deserialization never
  // renormalizes, so walker round trips are exact to the last bit.
  for (std::size_t w = 0; w < loaded.walkers.size(); ++w)
    for (std::size_t i = 0; i < loaded.walkers[w].size(); ++i) {
      EXPECT_EQ(loaded.walkers[w][i].x, original.walkers[w][i].x);
      EXPECT_EQ(loaded.walkers[w][i].y, original.walkers[w][i].y);
      EXPECT_EQ(loaded.walkers[w][i].z, original.walkers[w][i].z);
    }
}

TEST(Checkpoint, FileRoundTrip) {
  const Checkpoint original = sample_checkpoint();
  const std::string path = ::testing::TempDir() + "wlsms_checkpoint_test.txt";
  save_checkpoint(path, original);
  const Checkpoint loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.ln_g, original.ln_g);
  std::remove(path.c_str());
}

TEST(Checkpoint, RestoreDosRebuildsEstimate) {
  const Checkpoint cp = sample_checkpoint();
  DosGrid dos(cp.grid);
  restore_dos(cp, dos);
  EXPECT_EQ(dos.ln_g_values(), cp.ln_g);
  EXPECT_EQ(dos.visited(), cp.visited);
}

TEST(Checkpoint, BadMagicRejected) {
  const Checkpoint original = sample_checkpoint();
  std::stringstream stream;
  write_checkpoint(stream, original);
  std::string bytes = stream.str();
  bytes[0] ^= 0x5a;  // corrupt the shared-schema magic
  std::stringstream corrupted(bytes);
  EXPECT_THROW(read_checkpoint(corrupted), CheckpointError);
}

TEST(Checkpoint, WrongVersionRejected) {
  // A header from schema version 999: correct magic and payload kind, but a
  // version this build does not speak.
  serial::Encoder encoder;
  encoder.put_u32(serial::kMagic);
  encoder.put_u32(999);
  encoder.put_u32(static_cast<std::uint32_t>(serial::PayloadKind::kCheckpoint));
  const std::vector<std::byte> bytes = encoder.take();
  std::stringstream stream(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  EXPECT_THROW(read_checkpoint(stream), CheckpointError);
}

TEST(Checkpoint, WrongPayloadKindRejected) {
  // A valid header that announces a moment configuration, not a checkpoint.
  serial::Encoder encoder;
  serial::write_header(encoder, serial::PayloadKind::kMomentConfiguration);
  const std::vector<std::byte> bytes = encoder.take();
  std::stringstream stream(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  EXPECT_THROW(read_checkpoint(stream), CheckpointError);
}

TEST(Checkpoint, TruncationDetected) {
  const Checkpoint original = sample_checkpoint();
  std::stringstream stream;
  write_checkpoint(stream, original);
  std::string text = stream.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(read_checkpoint(truncated), CheckpointError);
}

TEST(Checkpoint, MissingFileRejected) {
  EXPECT_THROW(load_checkpoint("/nonexistent/path/cp.txt"), CheckpointError);
}

TEST(Checkpoint, EmptyStreamRejected) {
  std::stringstream stream;
  EXPECT_THROW(read_checkpoint(stream), CheckpointError);
}

TEST(Checkpoint, RestoreIntoMismatchedGridThrows) {
  const Checkpoint cp = sample_checkpoint();
  DosGridConfig other = cp.grid;
  other.bins = cp.grid.bins + 1;
  DosGrid dos(other);
  EXPECT_THROW(restore_dos(cp, dos), ContractError);
}

}  // namespace
}  // namespace wlsms::wl
