// Tests for the Metropolis baseline against exact single-bond results.
#include "mc/metropolis.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "common/units.hpp"
#include "heisenberg/heisenberg.hpp"
#include "lattice/cluster.hpp"
#include "lattice/structure.hpp"

namespace wlsms::mc {
namespace {

double langevin(double x) { return 1.0 / std::tanh(x) - 1.0 / x; }

wl::HeisenbergEnergy single_bond_energy(double j) {
  return wl::HeisenbergEnergy(heisenberg::HeisenbergModel(
      lattice::make_cubic_cluster(lattice::CubicLattice::kSimpleCubic, 1.0, 2,
                                  1, 1),
      {j}));
}

class MetropolisBetaJ : public ::testing::TestWithParam<double> {};

TEST_P(MetropolisBetaJ, SingleBondEnergyMatchesLangevin) {
  const double x = GetParam();  // beta J
  const double j = 1.0;
  const wl::HeisenbergEnergy energy = single_bond_energy(j);

  MetropolisConfig config;
  config.temperature_k = j / (units::k_boltzmann_ry * x);
  config.thermalization_steps = 50000;
  config.measurement_steps = 400000;
  config.measure_interval = 2;
  Rng rng(static_cast<unsigned>(100 * x));
  const MetropolisResult result = metropolis_run(
      energy, spin::MomentConfiguration::random(2, rng), config, rng);

  EXPECT_NEAR(result.mean_energy, -j * langevin(x), 0.02) << "beta J = " << x;
}

INSTANTIATE_TEST_SUITE_P(Temperatures, MetropolisBetaJ,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0));

TEST(Metropolis, SpecificHeatMatchesExactDerivative) {
  const double x = 1.0;
  const double j = 1.0;
  const wl::HeisenbergEnergy energy = single_bond_energy(j);
  MetropolisConfig config;
  config.temperature_k = j / (units::k_boltzmann_ry * x);
  config.thermalization_steps = 50000;
  config.measurement_steps = 1000000;
  config.measure_interval = 2;
  Rng rng(5);
  const MetropolisResult result = metropolis_run(
      energy, spin::MomentConfiguration::random(2, rng), config, rng);
  const double sinh_x = std::sinh(x);
  const double exact_c_over_kb = x * x * (1.0 / (x * x) - 1.0 / (sinh_x * sinh_x));
  EXPECT_NEAR(result.specific_heat / units::k_boltzmann_ry, exact_c_over_kb,
              0.08);
}

TEST(Metropolis, AcceptanceIncreasesWithTemperature) {
  const wl::HeisenbergEnergy energy = single_bond_energy(1.0);
  double previous = 0.0;
  Rng rng(6);
  for (double x : {8.0, 2.0, 0.5}) {  // colder -> hotter
    MetropolisConfig config;
    config.temperature_k = 1.0 / (units::k_boltzmann_ry * x);
    config.thermalization_steps = 20000;
    config.measurement_steps = 100000;
    const MetropolisResult result = metropolis_run(
        energy, spin::MomentConfiguration::ferromagnetic(2), config, rng);
    EXPECT_GT(result.acceptance, previous);
    previous = result.acceptance;
  }
}

TEST(Metropolis, ConeMovesRaiseColdAcceptance) {
  const wl::HeisenbergEnergy energy = single_bond_energy(1.0);
  Rng rng(7);
  MetropolisConfig sphere;
  sphere.temperature_k = 1.0 / (units::k_boltzmann_ry * 8.0);
  sphere.thermalization_steps = 20000;
  sphere.measurement_steps = 100000;
  MetropolisConfig cone = sphere;
  cone.cone_half_angle = 0.3;
  const MetropolisResult r_sphere = metropolis_run(
      energy, spin::MomentConfiguration::ferromagnetic(2), sphere, rng);
  const MetropolisResult r_cone = metropolis_run(
      energy, spin::MomentConfiguration::ferromagnetic(2), cone, rng);
  EXPECT_GT(r_cone.acceptance, r_sphere.acceptance);
  // Both estimators agree on the physics.
  EXPECT_NEAR(r_cone.mean_energy, r_sphere.mean_energy, 0.05);
}

TEST(Metropolis, SweepReturnsRequestedOrderAndCoolsMagnetization) {
  std::vector<double> j = {3.0e-3, 6.0e-5};
  const wl::HeisenbergEnergy energy(
      heisenberg::HeisenbergModel(lattice::make_fe_supercell(2), j));
  const std::vector<double> temps = {300.0, 1500.0, 800.0};
  MetropolisConfig config;
  config.thermalization_steps = 100000;
  config.measurement_steps = 300000;
  config.measure_interval = 16;
  Rng rng(8);
  const auto results = metropolis_sweep(energy, temps, config, rng);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_DOUBLE_EQ(results[0].temperature, 300.0);
  EXPECT_DOUBLE_EQ(results[1].temperature, 1500.0);
  EXPECT_DOUBLE_EQ(results[2].temperature, 800.0);
  // Magnetization decreases with temperature.
  EXPECT_GT(results[0].mean_magnetization, results[2].mean_magnetization);
  EXPECT_GT(results[2].mean_magnetization, results[1].mean_magnetization);
  // Energy increases with temperature.
  EXPECT_LT(results[0].mean_energy, results[2].mean_energy);
  EXPECT_LT(results[2].mean_energy, results[1].mean_energy);
}

TEST(Metropolis, CountsEnergyEvaluations) {
  const wl::HeisenbergEnergy energy = single_bond_energy(1.0);
  MetropolisConfig config;
  config.temperature_k = 1000.0;
  config.thermalization_steps = 100;
  config.measurement_steps = 900;
  Rng rng(9);
  const MetropolisResult result = metropolis_run(
      energy, spin::MomentConfiguration::random(2, rng), config, rng);
  EXPECT_EQ(result.energy_evaluations, 1001u);  // initial + one per step
}

TEST(Metropolis, FinalStateHandedBack) {
  const wl::HeisenbergEnergy energy = single_bond_energy(1.0);
  MetropolisConfig config;
  config.temperature_k = 500.0;
  config.thermalization_steps = 1000;
  config.measurement_steps = 1000;
  Rng rng(10);
  spin::MomentConfiguration final_state =
      spin::MomentConfiguration::ferromagnetic(2);
  metropolis_run(energy, spin::MomentConfiguration::random(2, rng), config,
                 rng, &final_state);
  EXPECT_EQ(final_state.size(), 2u);
  EXPECT_NEAR(final_state[0].norm(), 1.0, 1e-12);
}

TEST(Metropolis, InvalidConfigThrows) {
  const wl::HeisenbergEnergy energy = single_bond_energy(1.0);
  Rng rng(11);
  MetropolisConfig config;
  config.temperature_k = -5.0;
  EXPECT_THROW(metropolis_run(energy,
                              spin::MomentConfiguration::random(2, rng),
                              config, rng),
               ContractError);
}

}  // namespace
}  // namespace wlsms::mc
