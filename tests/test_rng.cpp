// Tests for the xoshiro256** generator and its sampling helpers.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>
#include <set>

namespace wlsms {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMomentsMatchUniformDistribution) {
  Rng rng(4);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 5e-3);
  EXPECT_NEAR(sum2 / n, 1.0 / 3.0, 5e-3);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-2.5, 7.5);
    ASSERT_GE(v, -2.5);
    ASSERT_LT(v, 7.5);
  }
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(6);
  constexpr std::uint64_t n = 7;
  std::array<int, n> counts{};
  const int draws = 140000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(n)];
  for (int c : counts) EXPECT_NEAR(c, draws / static_cast<int>(n), 800);
}

TEST(Rng, UniformIndexOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, UniformIndexZeroThrows) {
  Rng rng(8);
  EXPECT_THROW(rng.uniform_index(0), ContractError);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, UnitVectorIsNormalized) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    const Vec3 e = rng.unit_vector();
    ASSERT_NEAR(e.norm(), 1.0, 1e-12);
  }
}

TEST(Rng, UnitVectorIsIsotropic) {
  // Marsaglia sampling: each component has mean 0 and variance 1/3.
  Rng rng(11);
  Vec3 mean;
  Vec3 var;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    const Vec3 e = rng.unit_vector();
    mean += e;
    var += Vec3{e.x * e.x, e.y * e.y, e.z * e.z};
  }
  EXPECT_NEAR(mean.x / n, 0.0, 5e-3);
  EXPECT_NEAR(mean.y / n, 0.0, 5e-3);
  EXPECT_NEAR(mean.z / n, 0.0, 5e-3);
  EXPECT_NEAR(var.x / n, 1.0 / 3.0, 5e-3);
  EXPECT_NEAR(var.y / n, 1.0 / 3.0, 5e-3);
  EXPECT_NEAR(var.z / n, 1.0 / 3.0, 5e-3);
}

TEST(Rng, JumpProducesDisjointStream) {
  Rng a(12);
  Rng b(12);
  b.jump();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(a.next());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(seen.count(b.next()), 0u);
}

TEST(Rng, SplitStreamsAreDistinctAndDeterministic) {
  const Rng base(13);
  Rng s0 = base.split(0);
  Rng s1 = base.split(1);
  Rng s0_again = base.split(0);
  EXPECT_NE(s0.next(), s1.next());
  s0 = base.split(0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s0.next(), s0_again.next());
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace wlsms
