// Tests for the analytic production-fidelity cost model behind the cluster
// simulator (Table II / Fig. 7 reproduction).
#include "lsms/cost_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "cluster/machine.hpp"
#include "perf/flops.hpp"

namespace wlsms::lsms {
namespace {

TEST(Fidelity, ChannelsPerAtom) {
  LsmsFidelity f;
  f.lmax = 3;
  EXPECT_EQ(f.channels_per_atom(), 32u);  // 2 (lmax+1)^2
  f.lmax = 0;
  EXPECT_EQ(f.channels_per_atom(), 2u);
}

TEST(Fidelity, MatrixOrderIsChannelsTimesLiz) {
  LsmsFidelity f;
  f.lmax = 3;
  f.liz_atoms = 65;
  EXPECT_EQ(f.matrix_order(), 2080u);
}

TEST(CostModel, FlopsDominatedByFactorization) {
  LsmsFidelity f;
  const std::uint64_t total = flops_per_atom_point(f);
  const std::uint64_t lu = perf::cost::zgetrf(f.matrix_order());
  EXPECT_GT(total, lu);
  EXPECT_LT(total, lu + lu / 2);  // solves are a small correction
}

TEST(CostModel, MonotoneInFidelity) {
  LsmsFidelity base;
  LsmsFidelity bigger_l = base;
  bigger_l.lmax = base.lmax + 1;
  LsmsFidelity bigger_liz = base;
  bigger_liz.liz_atoms = base.liz_atoms + 20;
  EXPECT_GT(flops_per_atom_point(bigger_l), flops_per_atom_point(base));
  EXPECT_GT(flops_per_atom_point(bigger_liz), flops_per_atom_point(base));
}

TEST(CostModel, EnergyFlopsScaleWithAtoms) {
  LsmsFidelity f;
  EXPECT_EQ(flops_per_energy(f, 1024), 1024u * flops_per_energy(f, 1));
}

TEST(CostModel, PaperFidelityTakesTensOfSeconds) {
  // §II-C: "the underlying ab initio LSMS energy calculations require ...
  // tens of seconds" per evaluation with one atom per core.
  const cluster::MachineDescription jaguar = cluster::jaguar_xt5();
  LsmsFidelity f;  // lmax 3, 65-atom LIZ, 31 contour points
  const double t = seconds_per_energy(f, jaguar.sustained_flops_per_core());
  EXPECT_GT(t, 10.0);
  EXPECT_LT(t, 300.0);
}

TEST(CostModel, InvalidRateThrows) {
  LsmsFidelity f;
  EXPECT_THROW(seconds_per_energy(f, 0.0), ContractError);
}

}  // namespace
}  // namespace wlsms::lsms
