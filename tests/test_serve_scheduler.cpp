// BatchScheduler unit tests: admission control (bounded pending queue +
// per-session quota), round-robin fairness across sessions, the singleton
// fallback under light load, take_session teardown, and — the load-bearing
// property — batched energies bit-identical to the synchronous reference
// service.
#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"

namespace wlsms::serve {
namespace {

std::shared_ptr<const lsms::LsmsSolver> small_solver() {
  static const auto solver = std::make_shared<const lsms::LsmsSolver>(
      lattice::make_fe_supercell(2), lsms::fe_lsms_parameters_fast());
  return solver;
}

wl::EnergyRequest request_for(std::uint64_t ticket, Rng& rng) {
  wl::EnergyRequest request;
  request.walker = static_cast<std::size_t>(ticket % 4);
  request.ticket = ticket;
  request.config =
      spin::MomentConfiguration::random(small_solver()->n_atoms(), rng);
  return request;
}

TEST(ServeScheduler, AdmissionEnforcesQuotaAndQueueBound) {
  ServeLimits limits;
  limits.max_pending = 4;
  limits.max_session_outstanding = 2;
  limits.max_batch = 4;
  BatchScheduler scheduler(small_solver(), limits);
  Rng rng(601);

  using Admission = BatchScheduler::Admission;
  EXPECT_EQ(scheduler.submit(1, request_for(1, rng)), Admission::kAccepted);
  EXPECT_EQ(scheduler.submit(1, request_for(2, rng)), Admission::kAccepted);
  // Session 1 is at its quota; the daemon-wide queue still has room.
  EXPECT_EQ(scheduler.submit(1, request_for(3, rng)),
            Admission::kQuotaExceeded);
  EXPECT_EQ(scheduler.submit(2, request_for(4, rng)), Admission::kAccepted);
  EXPECT_EQ(scheduler.submit(3, request_for(5, rng)), Admission::kAccepted);
  EXPECT_EQ(scheduler.pending(), 4u);
  // Queue full beats quota: session 4 has no outstanding work but the
  // daemon-wide bound is reached.
  EXPECT_EQ(scheduler.submit(4, request_for(6, rng)), Admission::kQueueFull);
  EXPECT_EQ(scheduler.session_pending(1), 2u);
  EXPECT_EQ(scheduler.session_pending(4), 0u);
}

TEST(ServeScheduler, RoundRobinKeepsChattySessionFromFillingTheBatch) {
  ServeLimits limits;
  limits.max_pending = 32;
  limits.max_session_outstanding = 16;
  limits.max_batch = 4;
  BatchScheduler scheduler(small_solver(), limits);
  Rng rng(602);

  std::uint64_t ticket = 1;
  for (int k = 0; k < 6; ++k)
    scheduler.submit(1, request_for(ticket++, rng));
  for (int k = 0; k < 2; ++k)
    scheduler.submit(2, request_for(ticket++, rng));
  for (int k = 0; k < 2; ++k)
    scheduler.submit(3, request_for(ticket++, rng));

  std::vector<BatchScheduler::Completed> completed;
  scheduler.run_next_batch(completed);
  ASSERT_EQ(completed.size(), 4u);
  std::size_t from_session_1 = 0;
  bool saw_2 = false, saw_3 = false;
  for (const BatchScheduler::Completed& done : completed) {
    if (done.session == 1) ++from_session_1;
    if (done.session == 2) saw_2 = true;
    if (done.session == 3) saw_3 = true;
  }
  // One request per session per lap: sessions 2 and 3 each get a slot in
  // the first batch even though session 1 queued three times as much.
  EXPECT_EQ(from_session_1, 2u);
  EXPECT_TRUE(saw_2);
  EXPECT_TRUE(saw_3);
  EXPECT_EQ(scheduler.pending(), 6u);
}

TEST(ServeScheduler, LonePendingRequestTakesTheSingletonPath) {
  ServeLimits limits;
  BatchScheduler scheduler(small_solver(), limits);
  Rng rng(603);
  scheduler.submit(1, request_for(1, rng));

  std::vector<BatchScheduler::Completed> completed;
  scheduler.run_next_batch(completed);
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_FALSE(completed.front().result.failed);
  EXPECT_EQ(scheduler.stats().singleton_requests, 1u);
  EXPECT_EQ(scheduler.stats().batched_requests, 0u);
}

TEST(ServeScheduler, BatchedEnergiesMatchSynchronousServiceBitExactly) {
  ServeLimits limits;
  limits.max_batch = 8;
  limits.max_session_outstanding = 8;
  BatchScheduler scheduler(small_solver(), limits);

  Rng rng(604);
  std::vector<wl::EnergyRequest> requests;
  for (std::uint64_t t = 1; t <= 12; ++t)
    requests.push_back(request_for(t, rng));
  for (std::size_t k = 0; k < requests.size(); ++k)
    ASSERT_EQ(scheduler.submit(1 + k % 3, requests[k]),
              BatchScheduler::Admission::kAccepted);

  std::vector<BatchScheduler::Completed> completed;
  while (scheduler.pending() > 0) scheduler.run_next_batch(completed);
  ASSERT_EQ(completed.size(), requests.size());
  EXPECT_GT(scheduler.stats().batched_requests, 0u);

  const wl::LsmsEnergy reference(small_solver());
  wl::SynchronousEnergyService sync(reference);
  for (const BatchScheduler::Completed& done : completed) {
    ASSERT_FALSE(done.result.failed);
    const wl::EnergyRequest& request = requests[done.result.ticket - 1];
    sync.submit(request);
    const wl::EnergyResult expected = sync.retrieve();
    EXPECT_EQ(done.result.energy, expected.energy)
        << "ticket " << done.result.ticket;
  }
}

TEST(ServeScheduler, TakeSessionRemovesExactlyThatSessionsRequests) {
  ServeLimits limits;
  limits.max_session_outstanding = 8;
  BatchScheduler scheduler(small_solver(), limits);
  Rng rng(605);
  for (std::uint64_t t = 1; t <= 3; ++t)
    scheduler.submit(5, request_for(t, rng));
  scheduler.submit(6, request_for(10, rng));

  const std::vector<wl::EnergyRequest> taken = scheduler.take_session(5);
  ASSERT_EQ(taken.size(), 3u);
  // Oldest first, and the scheduler stamped the session identity.
  for (std::uint64_t t = 1; t <= 3; ++t) {
    EXPECT_EQ(taken[t - 1].ticket, t);
    EXPECT_EQ(taken[t - 1].session, 5u);
  }
  EXPECT_EQ(scheduler.pending(), 1u);
  EXPECT_EQ(scheduler.session_pending(5), 0u);
  EXPECT_TRUE(scheduler.take_session(5).empty());
}

TEST(ServeScheduler, OldestPendingDrivesTheBatchWindow) {
  ServeLimits limits;
  BatchScheduler scheduler(small_solver(), limits);
  EXPECT_FALSE(scheduler.oldest_pending_since().has_value());
  Rng rng(606);
  const auto before = std::chrono::steady_clock::now();
  scheduler.submit(1, request_for(1, rng));
  const auto oldest = scheduler.oldest_pending_since();
  ASSERT_TRUE(oldest.has_value());
  EXPECT_GE(*oldest, before);
  EXPECT_LE(*oldest, std::chrono::steady_clock::now());
}

}  // namespace
}  // namespace wlsms::serve
