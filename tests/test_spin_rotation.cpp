// Tests for the SU(2) rotation and Pauli algebra used by the frozen-
// potential moment rotations (paper §II-B, Fig. 2).
#include "spin/rotation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace wlsms::spin {
namespace {

Spin2x2 identity2() {
  return {Complex{1, 0}, Complex{0, 0}, Complex{0, 0}, Complex{1, 0}};
}

TEST(Pauli, SquaresAreIdentity) {
  for (const Spin2x2& sigma : {pauli_x(), pauli_y(), pauli_z()})
    EXPECT_LT(max_abs_diff(multiply2(sigma, sigma), identity2()), 1e-15);
}

TEST(Pauli, Anticommute) {
  const Spin2x2 xy = multiply2(pauli_x(), pauli_y());
  const Spin2x2 yx = multiply2(pauli_y(), pauli_x());
  Spin2x2 sum;
  for (int i = 0; i < 4; ++i) sum[i] = xy[i] + yx[i];
  EXPECT_LT(max_abs_diff(sum, {Complex{0, 0}, {0, 0}, {0, 0}, {0, 0}}), 1e-15);
}

TEST(Pauli, ProductGivesIZ) {
  // sigma_x sigma_y = i sigma_z
  const Spin2x2 xy = multiply2(pauli_x(), pauli_y());
  Spin2x2 iz = pauli_z();
  for (Complex& v : iz) v *= Complex{0, 1};
  EXPECT_LT(max_abs_diff(xy, iz), 1e-15);
}

TEST(Pauli, DotAlongAxesMatchesSingleMatrices) {
  EXPECT_LT(max_abs_diff(pauli_dot({1, 0, 0}), pauli_x()), 1e-15);
  EXPECT_LT(max_abs_diff(pauli_dot({0, 1, 0}), pauli_y()), 1e-15);
  EXPECT_LT(max_abs_diff(pauli_dot({0, 0, 1}), pauli_z()), 1e-15);
}

class Su2Directions : public ::testing::TestWithParam<int> {};

TEST_P(Su2Directions, RotatesSigmaZOntoDirection) {
  Rng rng(static_cast<unsigned>(GetParam()));
  const Vec3 e = rng.unit_vector();
  const Spin2x2 r = su2_from_direction(e);
  const Spin2x2 rotated = conjugate(r, pauli_z());
  EXPECT_LT(max_abs_diff(rotated, pauli_dot(e)), 1e-12);
}

TEST_P(Su2Directions, IsUnitary) {
  Rng rng(static_cast<unsigned>(GetParam()) + 100);
  const Spin2x2 r = su2_from_direction(rng.unit_vector());
  EXPECT_LT(max_abs_diff(multiply2(r, dagger(r)), identity2()), 1e-13);
  EXPECT_LT(max_abs_diff(multiply2(dagger(r), r), identity2()), 1e-13);
}

TEST_P(Su2Directions, RotatedTMatrixEqualsConjugation) {
  // t(e) = R diag(t_up, t_dn) R^dagger must equal
  // t_bar 1 + dt (sigma . e) (the closed form used in the hot path).
  Rng rng(static_cast<unsigned>(GetParam()) + 200);
  const Vec3 e = rng.unit_vector();
  const Complex t_up{0.3, -0.4};
  const Complex t_dn{-0.1, 0.2};
  const Spin2x2 diag{t_up, Complex{0, 0}, Complex{0, 0}, t_dn};
  const Spin2x2 via_rotation = conjugate(su2_from_direction(e), diag);
  const Spin2x2 closed_form = rotated_t_matrix(t_up, t_dn, e);
  EXPECT_LT(max_abs_diff(via_rotation, closed_form), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(RandomDirections, Su2Directions,
                         ::testing::Range(0, 16));

TEST(Su2, HandlesPolesOfParameterization) {
  const Spin2x2 up = su2_from_direction({0, 0, 1});
  EXPECT_LT(max_abs_diff(conjugate(up, pauli_z()), pauli_z()), 1e-14);
  const Spin2x2 down = su2_from_direction({0, 0, -1});
  Spin2x2 minus_z = pauli_z();
  for (Complex& v : minus_z) v = -v;
  EXPECT_LT(max_abs_diff(conjugate(down, pauli_z()), minus_z), 1e-14);
}

TEST(RotatedT, EqualSpinChannelsAreDirectionIndependent) {
  // With t_up == t_dn the moment direction must drop out entirely.
  Rng rng(7);
  const Complex t{0.5, -0.25};
  const Spin2x2 a = rotated_t_matrix(t, t, rng.unit_vector());
  Spin2x2 expected{t, Complex{0, 0}, Complex{0, 0}, t};
  EXPECT_LT(max_abs_diff(a, expected), 1e-15);
}

TEST(RotatedT, TraceIsInvariant) {
  // Tr t(e) = t_up + t_dn for every direction.
  Rng rng(8);
  const Complex t_up{0.3, 0.1};
  const Complex t_dn{-0.6, 0.4};
  for (int k = 0; k < 8; ++k) {
    const Spin2x2 t = rotated_t_matrix(t_up, t_dn, rng.unit_vector());
    EXPECT_NEAR(std::abs(t[0] + t[3] - (t_up + t_dn)), 0.0, 1e-14);
  }
}

}  // namespace
}  // namespace wlsms::spin
