// Tests for the Monte Carlo trial-move generators.
#include "spin/moves.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>
#include <vector>

namespace wlsms::spin {
namespace {

TEST(UniformSphereMove, ProposesValidSitesAndDirections) {
  Rng rng(1);
  const auto config = MomentConfiguration::ferromagnetic(12);
  const UniformSphereMove move;
  for (int k = 0; k < 1000; ++k) {
    const TrialMove trial = move.propose(config, rng);
    ASSERT_LT(trial.site, config.size());
    ASSERT_NEAR(trial.new_direction.norm(), 1.0, 1e-12);
  }
}

TEST(UniformSphereMove, SiteSelectionIsUniform) {
  Rng rng(2);
  const auto config = MomentConfiguration::ferromagnetic(8);
  const UniformSphereMove move;
  std::vector<int> counts(8, 0);
  const int draws = 80000;
  for (int k = 0; k < draws; ++k) ++counts[move.propose(config, rng).site];
  for (int c : counts) EXPECT_NEAR(c, draws / 8, 600);
}

TEST(UniformSphereMove, NewDirectionIndependentOfCurrent) {
  // Mean projection of the proposal on the old direction is zero.
  Rng rng(3);
  const auto config = MomentConfiguration::ferromagnetic(4);
  const UniformSphereMove move;
  double mean_proj = 0.0;
  const int draws = 100000;
  for (int k = 0; k < draws; ++k)
    mean_proj += move.propose(config, rng).new_direction.z;
  EXPECT_NEAR(mean_proj / draws, 0.0, 0.01);
}

TEST(ConeMove, StaysWithinCone) {
  Rng rng(4);
  const double half_angle = 0.3;
  const ConeMove move(half_angle);
  auto config = MomentConfiguration::ferromagnetic(5);
  config.set(2, {1.0, 1.0, 0.2});
  for (int k = 0; k < 5000; ++k) {
    const TrialMove trial = move.propose(config, rng);
    const double cos_angle =
        trial.new_direction.dot(config[trial.site]);
    ASSERT_GE(cos_angle, std::cos(half_angle) - 1e-12);
    ASSERT_NEAR(trial.new_direction.norm(), 1.0, 1e-12);
  }
}

TEST(ConeMove, CoversTheCone) {
  // The proposal reaches angles near the cone boundary.
  Rng rng(5);
  const double half_angle = 0.5;
  const ConeMove move(half_angle);
  const auto config = MomentConfiguration::ferromagnetic(1);
  double max_angle = 0.0;
  for (int k = 0; k < 20000; ++k) {
    const TrialMove trial = move.propose(config, rng);
    max_angle = std::max(
        max_angle, std::acos(std::min(1.0, trial.new_direction.z)));
  }
  EXPECT_GT(max_angle, 0.9 * half_angle);
}

TEST(ConeMove, AzimuthallySymmetric) {
  Rng rng(6);
  const ConeMove move(0.4);
  const auto config = MomentConfiguration::ferromagnetic(1);
  double mean_x = 0.0;
  double mean_y = 0.0;
  const int draws = 100000;
  for (int k = 0; k < draws; ++k) {
    const TrialMove trial = move.propose(config, rng);
    mean_x += trial.new_direction.x;
    mean_y += trial.new_direction.y;
  }
  EXPECT_NEAR(mean_x / draws, 0.0, 5e-3);
  EXPECT_NEAR(mean_y / draws, 0.0, 5e-3);
}

TEST(ConeMove, WorksForAllOrientations) {
  // The frame construction must not degenerate for moments near any axis.
  Rng rng(7);
  const ConeMove move(0.2);
  for (const Vec3& dir : {Vec3{0, 0, 1}, Vec3{0, 0, -1}, Vec3{1, 0, 0},
                          Vec3{0, 1, 0}, Vec3{0.577, 0.577, 0.577}}) {
    auto config = MomentConfiguration::from_directions({dir});
    for (int k = 0; k < 100; ++k) {
      const TrialMove trial = move.propose(config, rng);
      ASSERT_GE(trial.new_direction.dot(config[0]),
                std::cos(0.2) - 1e-12);
    }
  }
}

TEST(ConeMove, InvalidAngleThrows) {
  EXPECT_THROW(ConeMove(0.0), ContractError);
  EXPECT_THROW(ConeMove(-0.5), ContractError);
  EXPECT_THROW(ConeMove(4.0), ContractError);
}

}  // namespace
}  // namespace wlsms::spin
