// TCP Communicator tests over loopback: the handshake (including garbage
// connections that must be rejected without consuming a rank slot), echo
// plumbing and large frames through real TCP sockets, corrupt-stream rank
// death, and the distributed energy service end to end — energies
// bit-identical to the serial solver and kill-a-rank failover, exactly
// mirroring the socketpair suite (test_comm_process.cpp).
//
// In the `net` ctest label, NOT `sanitize`: these tests fork worker
// processes and open real sockets, neither of which tsan supports.
#include "comm/communicator.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "comm/distributed_service.hpp"
#include "comm/framing.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"
#include "lsms/solver.hpp"
#include "wl/energy_function.hpp"

namespace wlsms::comm {
namespace {

using namespace std::chrono_literals;

Message text_message(std::uint32_t tag, const std::string& text) {
  Message message;
  message.tag = tag;
  message.payload.resize(text.size());
  if (!text.empty())
    std::memcpy(message.payload.data(), text.data(), text.size());
  return message;
}

void echo_worker(WorkerChannel& channel) {
  while (std::optional<Message> message = channel.recv())
    channel.send(*message);
}

/// Blocking client connect to 127.0.0.1:<port of "host:port" address>, for
/// tests that speak the protocol (or deliberately don't) by hand.
int raw_connect(const std::string& address) {
  const std::size_t colon = address.rfind(':');
  struct addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  struct addrinfo* resolved = nullptr;
  if (::getaddrinfo(address.substr(0, colon).c_str(),
                    address.substr(colon + 1).c_str(), &hints,
                    &resolved) != 0)
    return -1;
  const int fd = ::socket(resolved->ai_family, resolved->ai_socktype, 0);
  const int rc =
      fd >= 0 ? ::connect(fd, resolved->ai_addr, resolved->ai_addrlen) : -1;
  ::freeaddrinfo(resolved);
  if (rc != 0) {
    if (fd >= 0) ::close(fd);
    return -1;
  }
  return fd;
}

TEST(TcpCommunicator, EchoAcrossForkedLoopbackWorkers) {
  constexpr std::size_t kRanks = 4;
  auto comm = make_tcp_communicator(kRanks, echo_worker, TcpOptions{});
  EXPECT_EQ(comm->n_alive(), kRanks);
  for (std::size_t r = 0; r < kRanks; ++r)
    EXPECT_TRUE(comm->send(r, text_message(static_cast<std::uint32_t>(r),
                                           "rank" + std::to_string(r))));
  std::vector<bool> seen(kRanks, false);
  for (std::size_t k = 0; k < kRanks; ++k) {
    std::optional<Incoming> incoming;
    while (!incoming) incoming = comm->recv(500ms);
    EXPECT_EQ(incoming->message.tag, incoming->rank);
    EXPECT_FALSE(seen[incoming->rank]);
    seen[incoming->rank] = true;
  }
  comm->shutdown();
  EXPECT_EQ(comm->n_alive(), 0u);
}

TEST(TcpCommunicator, LargeFrameSurvivesTcp) {
  auto comm = make_tcp_communicator(1, echo_worker, TcpOptions{});
  std::string big(1 << 22, 'x');  // 4 MiB: chunked writes + reassembly
  for (std::size_t i = 0; i < big.size(); i += 4096)
    big[i] = static_cast<char>('a' + (i / 4096) % 26);
  EXPECT_TRUE(comm->send(0, text_message(7, big)));
  std::optional<Incoming> incoming;
  while (!incoming) incoming = comm->recv(1000ms);
  ASSERT_EQ(incoming->message.payload.size(), big.size());
  EXPECT_EQ(std::memcmp(incoming->message.payload.data(), big.data(),
                        big.size()),
            0);
}

TEST(TcpCommunicator, ExternalWorkersJoinAndGarbageConnectionsAreRejected) {
  // spawn_workers = false: the controller only listens; "remote" workers
  // are threads of this test running the public run_tcp_worker entry point
  // — the same code path `wlsms worker --connect` uses. Before the real
  // workers join, a garbage connection (wrong magic, no valid hello) must
  // be rejected WITHOUT consuming one of the two rank slots.
  std::vector<std::thread> workers;
  std::thread nuisance;
  TcpOptions options;
  options.spawn_workers = false;
  options.on_listening = [&](const std::string& address) {
    nuisance = std::thread([address] {
      const int fd = raw_connect(address);
      ASSERT_GE(fd, 0);
      const char junk[] = "GET / HTTP/1.1\r\n\r\n";
      (void)::send(fd, junk, sizeof(junk), MSG_NOSIGNAL);
      ::close(fd);
    });
    for (int k = 0; k < 2; ++k)
      workers.emplace_back([address] {
        (void)run_tcp_worker(address, echo_worker);
      });
  };
  auto comm = make_tcp_communicator(2, nullptr, options);
  nuisance.join();
  EXPECT_EQ(comm->n_alive(), 2u);
  EXPECT_TRUE(comm->send(0, text_message(5, "over tcp")));
  std::optional<Incoming> incoming;
  while (!incoming) incoming = comm->recv(500ms);
  EXPECT_EQ(incoming->rank, 0u);
  EXPECT_EQ(incoming->message.tag, 5u);
  comm->shutdown();  // workers see EOF and return
  for (std::thread& w : workers) w.join();
}

TEST(TcpCommunicator, CorruptFrameAfterHandshakeIsRankDeathNotCrash) {
  // A worker that handshakes correctly, then floods the stream with a
  // corrupt length field: the controller must mark the rank dead and keep
  // serving the healthy rank, never crash or wedge.
  std::thread rogue;
  std::vector<std::thread> workers;
  TcpOptions options;
  options.spawn_workers = false;
  options.on_listening = [&](const std::string& address) {
    rogue = std::thread([address] {
      const int fd = raw_connect(address);
      ASSERT_GE(fd, 0);
      serial::Encoder hello;
      serial::write_header(hello, serial::PayloadKind::kTcpHello);
      hello.put_u64(0);  // trace node
      hello.put_u64(0);  // clock-probe t0
      const std::vector<std::byte> frame =
          frame_bytes(Message{kTagHello, hello.take()});
      ASSERT_TRUE(write_all(fd, frame.data(), frame.size(),
                            StreamClock::now() + 2s));
      // Swallow the welcome header + payload (8 + 52 bytes), then betray
      // the protocol: a length field far beyond kMaxFrameBytes.
      char welcome[60];
      ASSERT_TRUE(read_all(fd, welcome, sizeof(welcome)));
      const std::uint8_t corrupt[8] = {0xFF, 0xFF, 0xFF, 0xFF, 1, 0, 0, 0};
      (void)::send(fd, corrupt, sizeof(corrupt), MSG_NOSIGNAL);
      // Stay connected so death comes from the corrupt frame, not EOF.
      char sink;
      (void)::recv(fd, &sink, 1, 0);
      ::close(fd);
    });
    workers.emplace_back([address] {
      (void)run_tcp_worker(address, echo_worker);
    });
  };
  auto comm = make_tcp_communicator(2, nullptr, options);

  // Drive recv until the corrupt stream is drained and the rogue rank dies.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (comm->n_alive() == 2 && std::chrono::steady_clock::now() < deadline)
    (void)comm->recv(50ms);
  EXPECT_EQ(comm->n_alive(), 1u);

  // The surviving rank still echoes.
  std::size_t healthy = comm->alive(0) ? 0 : 1;
  EXPECT_TRUE(comm->send(healthy, text_message(6, "still here")));
  std::optional<Incoming> incoming;
  while (!incoming) incoming = comm->recv(500ms);
  EXPECT_EQ(incoming->rank, healthy);
  comm->shutdown();
  rogue.join();
  for (std::thread& w : workers) w.join();
}

struct Fe16 {
  std::shared_ptr<const lsms::LsmsSolver> solver;
  std::unique_ptr<wl::LsmsEnergy> energy;
};

const Fe16& fe16() {
  static Fe16 fixture = [] {
    Fe16 f;
    f.solver = std::make_shared<const lsms::LsmsSolver>(
        lattice::make_fe_supercell(2), lsms::fe_lsms_parameters_fast());
    f.energy = std::make_unique<wl::LsmsEnergy>(f.solver);
    return f;
  }();
  return fixture;
}

TEST(TcpDistributedService, BitIdenticalToSerialSolver) {
  const Fe16& f = fe16();
  DistributedConfig config;
  config.n_groups = 2;
  config.group_size = 2;
  config.transport = Transport::kTcp;
  DistributedEnergyService distributed(f.solver, config);
  EXPECT_EQ(distributed.n_workers(), 4u);

  Rng rng(41);
  constexpr std::size_t kEvals = 6;
  std::vector<spin::MomentConfiguration> configs;
  for (std::size_t k = 0; k < kEvals; ++k)
    configs.push_back(spin::MomentConfiguration::random(16, rng));
  for (std::size_t k = 0; k < kEvals; ++k)
    distributed.submit({k % 2, k + 1, configs[k]});
  std::vector<double> got(kEvals, 0.0);
  for (std::size_t k = 0; k < kEvals; ++k) {
    const wl::EnergyResult r = distributed.retrieve();
    EXPECT_FALSE(r.failed);
    got[r.ticket - 1] = r.energy;
  }
  for (std::size_t k = 0; k < kEvals; ++k)
    EXPECT_EQ(got[k], f.energy->total_energy(configs[k]))
        << "eval " << k << " differs from the serial solver";
}

TEST(TcpDistributedService, KilledWorkerMidRunRequestCompletes) {
  const Fe16& f = fe16();
  DistributedConfig config;
  config.n_groups = 1;
  config.group_size = 2;
  config.transport = Transport::kTcp;
  DistributedEnergyService distributed(f.solver, config);

  Rng rng(42);
  const auto moments = spin::MomentConfiguration::random(16, rng);
  distributed.submit({0, 1, moments});
  // SIGKILL one assigned TCP worker right after the scatter: ECONNRESET/EOF
  // on its socket must reroute the shard to the survivor.
  distributed.communicator().kill(0);
  const wl::EnergyResult result = distributed.retrieve();
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.energy, f.energy->total_energy(moments));
  EXPECT_EQ(distributed.n_alive_workers(), 1u);
  EXPECT_GE(distributed.reroutes(), 1u);

  distributed.submit({0, 2, moments});
  EXPECT_EQ(distributed.retrieve().energy, f.energy->total_energy(moments));
}

TEST(TcpDistributedService, DeltaScatterOverTcpStaysBitIdentical) {
  // Single-moved-site walks: after the first full scatter every subsequent
  // send is a coalesced delta frame; energies must stay bit-identical.
  const Fe16& f = fe16();
  DistributedConfig config;
  config.n_groups = 1;
  config.group_size = 4;
  config.transport = Transport::kTcp;
  DistributedEnergyService distributed(f.solver, config);

  Rng rng(43);
  spin::MomentConfiguration moments =
      spin::MomentConfiguration::random(16, rng);
  for (std::uint64_t step = 1; step <= 4; ++step) {
    moments.set(rng.uniform_index(16), rng.unit_vector());
    distributed.submit({0, step, moments});
    EXPECT_EQ(distributed.retrieve().energy, f.energy->total_energy(moments))
        << "step " << step;
  }
}

}  // namespace
}  // namespace wlsms::comm
