// Tests for the classical Heisenberg surrogate Hamiltonian.
#include "heisenberg/heisenberg.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "lattice/cluster.hpp"
#include "lattice/structure.hpp"

namespace wlsms::heisenberg {
namespace {

lattice::Structure dimer() {
  return lattice::make_cubic_cluster(lattice::CubicLattice::kSimpleCubic, 1.0,
                                     2, 1, 1);
}

TEST(Heisenberg, DimerEnergyIsMinusJCosTheta) {
  const HeisenbergModel model(dimer(), {2.0});
  for (double theta : {0.0, 0.5, 1.2, 3.14159}) {
    const auto config = spin::MomentConfiguration::from_directions(
        {{0, 0, 1}, {std::sin(theta), 0, std::cos(theta)}});
    EXPECT_NEAR(model.energy(config), -2.0 * std::cos(theta), 1e-12);
  }
}

TEST(Heisenberg, BondCountOnBccCell) {
  const HeisenbergModel model(lattice::make_fe_supercell(2), {1.0, 0.5});
  EXPECT_EQ(model.bonds().size(), 64u + 48u);
}

TEST(Heisenberg, ZeroCouplingShellsProduceNoBonds) {
  const HeisenbergModel model(lattice::make_fe_supercell(2), {1.0, 0.0});
  EXPECT_EQ(model.bonds().size(), 64u);
}

TEST(Heisenberg, FerromagneticEnergyIsMinusBondSum) {
  const HeisenbergModel model(lattice::make_fe_supercell(2), {1.5, 0.25});
  const double expected = -(64.0 * 1.5 + 48.0 * 0.25);
  EXPECT_NEAR(model.ferromagnetic_energy(), expected, 1e-10);
  EXPECT_NEAR(
      model.energy(spin::MomentConfiguration::ferromagnetic(16)),
      expected, 1e-10);
}

TEST(Heisenberg, StaggeredEnergyOnBipartiteLattice) {
  // bcc J1 bonds connect the two sublattices; J2 bonds stay within one.
  const HeisenbergModel model(lattice::make_fe_supercell(2), {1.0, 0.5});
  std::vector<bool> sub(16);
  for (std::size_t i = 0; i < 16; ++i) sub[i] = (i % 2 == 1);
  EXPECT_NEAR(model.staggered_energy(sub), 64.0 * 1.0 - 48.0 * 0.5, 1e-10);
  EXPECT_NEAR(model.energy(spin::MomentConfiguration::staggered(sub)),
              model.staggered_energy(sub), 1e-10);
}

class HeisenbergDeltas : public ::testing::TestWithParam<int> {};

TEST_P(HeisenbergDeltas, IncrementalDeltaMatchesRecompute) {
  Rng rng(static_cast<unsigned>(GetParam()));
  const HeisenbergModel model(lattice::make_fe_supercell(2),
                              {3.2e-3, 6.1e-5});
  auto config = spin::MomentConfiguration::random(16, rng);
  double e = model.energy(config);
  const spin::UniformSphereMove mover;
  for (int k = 0; k < 200; ++k) {
    const spin::TrialMove move = mover.propose(config, rng);
    const double delta = model.energy_delta(config, move);
    config.set(move.site, move.new_direction);
    const double e_new = model.energy(config);
    ASSERT_NEAR(e + delta, e_new, 1e-12);
    e = e_new;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeisenbergDeltas, ::testing::Range(1, 6));

TEST(Heisenberg, UniformAnisotropyFavorsAxis) {
  HeisenbergModel model(dimer(), {0.0});
  model.set_uniform_anisotropy(1.0, {0, 0, 1});
  const auto along = spin::MomentConfiguration::ferromagnetic(2);
  const auto transverse = spin::MomentConfiguration::from_directions(
      {{1, 0, 0}, {1, 0, 0}});
  EXPECT_NEAR(model.energy(along), -2.0, 1e-12);
  EXPECT_NEAR(model.energy(transverse), 0.0, 1e-12);
  // Both +z and -z are equally favourable (easy axis, not easy direction).
  const auto down = spin::MomentConfiguration::from_directions(
      {{0, 0, -1}, {0, 0, -1}});
  EXPECT_NEAR(model.energy(down), -2.0, 1e-12);
}

TEST(Heisenberg, SiteAnisotropyOnlyAffectsSelectedSites) {
  HeisenbergModel model(dimer(), {0.0});
  model.set_site_anisotropy({1}, 2.0, {0, 0, 1});
  const auto config = spin::MomentConfiguration::ferromagnetic(2);
  EXPECT_NEAR(model.energy(config), -2.0, 1e-12);
  // Rotating site 0 (no anisotropy) changes nothing.
  auto rotated = config;
  rotated.set(0, {1, 0, 0});
  EXPECT_NEAR(model.energy(rotated), -2.0, 1e-12);
}

TEST(Heisenberg, AnisotropyDeltaMatchesRecompute) {
  Rng rng(9);
  HeisenbergModel model(lattice::make_fe_supercell(2), {1e-3});
  model.set_uniform_anisotropy(5e-4, {0, 0, 1});
  auto config = spin::MomentConfiguration::random(16, rng);
  double e = model.energy(config);
  const spin::UniformSphereMove mover;
  for (int k = 0; k < 100; ++k) {
    const spin::TrialMove move = mover.propose(config, rng);
    const double delta = model.energy_delta(config, move);
    config.set(move.site, move.new_direction);
    ASSERT_NEAR(e + delta, model.energy(config), 1e-13);
    e = model.energy(config);
  }
}

TEST(Heisenberg, FerromagneticEnergyIncludesAnisotropy) {
  HeisenbergModel model(dimer(), {1.0});
  model.set_uniform_anisotropy(0.5, {0, 0, 1});
  EXPECT_NEAR(model.ferromagnetic_energy(), -1.0 - 2.0 * 0.5, 1e-12);
}

TEST(Heisenberg, FiniteClusterHasFewerBondsThanPeriodic) {
  const auto periodic = lattice::make_supercell(
      lattice::CubicLattice::kSimpleCubic, 1.0, 3, 3, 3);
  const auto open = lattice::make_cubic_cluster(
      lattice::CubicLattice::kSimpleCubic, 1.0, 3, 3, 3);
  const HeisenbergModel mp(periodic, {1.0});
  const HeisenbergModel mo(open, {1.0});
  EXPECT_EQ(mp.bonds().size(), 81u);  // 27 sites x 6 / 2
  EXPECT_EQ(mo.bonds().size(), 54u);  // 3 * 2*3*3 faces
}

TEST(Heisenberg, ContractViolations) {
  const HeisenbergModel model(dimer(), {1.0});
  Rng rng(1);
  const auto wrong = spin::MomentConfiguration::random(5, rng);
  EXPECT_THROW(model.energy(wrong), ContractError);
  EXPECT_THROW(HeisenbergModel(dimer(), {}), ContractError);
  HeisenbergModel m2(dimer(), {1.0});
  EXPECT_THROW(m2.set_uniform_anisotropy(1.0, {0, 0, 0}), ContractError);
  EXPECT_THROW(m2.set_site_anisotropy({9}, 1.0, {0, 0, 1}), ContractError);
}

}  // namespace
}  // namespace wlsms::heisenberg
