// Round-trip property tests for the comm wire protocol (comm/wire): random
// configurations survive encode/decode bit-exactly, and truncated or
// corrupted buffers always throw SerializationError — under asan-ubsan this
// doubles as a proof the decoder cannot read out of bounds or crash.
#include "comm/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "spin/serialize.hpp"

namespace wlsms::comm {
namespace {

using serial::SerializationError;

bool same_bits(const Vec3& a, const Vec3& b) {
  return std::memcmp(&a, &b, sizeof(Vec3)) == 0;
}

spin::MomentConfiguration random_config(std::size_t n, Rng& rng) {
  return spin::MomentConfiguration::random(n, rng);
}

// ---- round trips ----------------------------------------------------------

TEST(CommWire, ShardRequestFullRoundTripIsBitExact) {
  Rng rng(101);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng.uniform_index(40);
    ShardRequest request;
    request.ticket = rng.next();
    request.attempt = static_cast<std::uint32_t>(rng.uniform_index(1u << 30));
    request.walker = rng.uniform_index(64);
    request.first_atom = rng.uniform_index(n);
    request.n_shard_atoms = 1 + rng.uniform_index(n - request.first_atom);
    request.kind = ShardRequest::ConfigKind::kFull;
    request.full = random_config(n, rng);
    request.session = rng.next();
    request.trace.trace_id = rng.next();
    request.trace.span_id = rng.next();

    const ShardRequest back = decode_shard_request(encode_shard_request(request));
    EXPECT_EQ(back.ticket, request.ticket);
    EXPECT_EQ(back.attempt, request.attempt);
    EXPECT_EQ(back.session, request.session);
    EXPECT_EQ(back.trace.trace_id, request.trace.trace_id);
    EXPECT_EQ(back.trace.span_id, request.trace.span_id);
    EXPECT_EQ(back.walker, request.walker);
    EXPECT_EQ(back.first_atom, request.first_atom);
    EXPECT_EQ(back.n_shard_atoms, request.n_shard_atoms);
    EXPECT_EQ(back.kind, ShardRequest::ConfigKind::kFull);
    EXPECT_EQ(back.n_total_atoms, n);
    ASSERT_EQ(back.full.size(), n);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_TRUE(same_bits(back.full[i], request.full[i]));
  }
}

TEST(CommWire, ShardRequestDeltaRoundTrip) {
  Rng rng(102);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 2 + rng.uniform_index(40);
    ShardRequest request;
    request.ticket = rng.next();
    request.attempt = 3;
    request.walker = 1;
    request.first_atom = 0;
    request.n_shard_atoms = n;
    request.kind = ShardRequest::ConfigKind::kDelta;
    request.n_total_atoms = n;
    const std::size_t n_moved = rng.uniform_index(n);
    for (std::size_t k = 0; k < n_moved; ++k)
      request.moved_sites.push_back({rng.uniform_index(n), rng.unit_vector()});

    const ShardRequest back = decode_shard_request(encode_shard_request(request));
    EXPECT_EQ(back.kind, ShardRequest::ConfigKind::kDelta);
    EXPECT_EQ(back.n_total_atoms, n);
    ASSERT_EQ(back.moved_sites.size(), request.moved_sites.size());
    for (std::size_t k = 0; k < n_moved; ++k) {
      EXPECT_EQ(back.moved_sites[k].site, request.moved_sites[k].site);
      EXPECT_TRUE(same_bits(back.moved_sites[k].direction,
                            request.moved_sites[k].direction));
    }
  }
}

TEST(CommWire, ShardResultRoundTripIsBitExact) {
  Rng rng(103);
  for (int round = 0; round < 20; ++round) {
    ShardResult result;
    result.ticket = rng.next();
    result.attempt = static_cast<std::uint32_t>(rng.uniform_index(100));
    result.first_atom = rng.uniform_index(100);
    const std::size_t n = 1 + rng.uniform_index(64);
    for (std::size_t k = 0; k < n; ++k)
      result.energies.push_back(rng.uniform(-10.0, 10.0));

    const ShardResult back = decode_shard_result(encode_shard_result(result));
    EXPECT_EQ(back.ticket, result.ticket);
    EXPECT_EQ(back.attempt, result.attempt);
    EXPECT_EQ(back.first_atom, result.first_atom);
    ASSERT_EQ(back.energies.size(), n);
    for (std::size_t k = 0; k < n; ++k)
      EXPECT_EQ(back.energies[k], result.energies[k]);
  }
}

TEST(CommWire, ShardEvictRoundTripTruncationAndWrongKind) {
  Rng rng(110);
  for (int round = 0; round < 10; ++round) {
    ShardEvict evict;
    evict.session = rng.next();
    const std::vector<std::byte> bytes = encode_shard_evict(evict);
    EXPECT_EQ(decode_shard_evict(bytes).session, evict.session);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      const std::vector<std::byte> truncated(
          bytes.begin(), bytes.begin() + static_cast<long>(cut));
      EXPECT_THROW(decode_shard_evict(truncated), SerializationError)
          << "cut at " << cut;
    }
    EXPECT_THROW(decode_shard_request(bytes), SerializationError);
    EXPECT_THROW(decode_shard_evict(encode_shard_result({})),
                 SerializationError);
  }
}

TEST(CommWire, EnergyRequestAndResultRoundTrip) {
  Rng rng(104);
  wl::EnergyRequest request;
  request.walker = 5;
  request.ticket = 77;
  request.config = random_config(16, rng);
  request.session = 0x00C0FFEE00C0FFEEull;  // tenant-session id rides along
  request.trace = {0xAAAAull, 0xBBBBull};   // as does the originating span
  const wl::EnergyRequest req_back =
      decode_energy_request(encode_energy_request(request));
  EXPECT_EQ(req_back.walker, request.walker);
  EXPECT_EQ(req_back.ticket, request.ticket);
  EXPECT_EQ(req_back.session, request.session);
  EXPECT_EQ(req_back.trace.trace_id, request.trace.trace_id);
  EXPECT_EQ(req_back.trace.span_id, request.trace.span_id);
  ASSERT_EQ(req_back.config.size(), request.config.size());
  for (std::size_t i = 0; i < request.config.size(); ++i)
    EXPECT_TRUE(same_bits(req_back.config[i], request.config[i]));

  wl::EnergyResult result{3, 42, -1.25, true};
  const wl::EnergyResult res_back =
      decode_energy_result(encode_energy_result(result));
  EXPECT_EQ(res_back.walker, result.walker);
  EXPECT_EQ(res_back.ticket, result.ticket);
  EXPECT_EQ(res_back.energy, result.energy);
  EXPECT_EQ(res_back.failed, result.failed);
}

TEST(CommWire, MomentCodecNeverRenormalizes) {
  // The direction (1, 1, 1)/sqrt(3) does not renormalize to itself bitwise;
  // the codec must hand back exactly what was sent.
  Rng rng(105);
  const spin::MomentConfiguration config = random_config(8, rng);
  serial::Encoder encoder;
  spin::encode_moments(encoder, config);
  serial::Decoder decoder(encoder.bytes());
  const spin::MomentConfiguration back = spin::decode_moments(decoder);
  ASSERT_EQ(back.size(), config.size());
  for (std::size_t i = 0; i < config.size(); ++i)
    EXPECT_TRUE(same_bits(back[i], config[i]));
}

// ---- truncation / corruption ---------------------------------------------

TEST(CommWire, EveryTruncationThrows) {
  Rng rng(106);
  ShardRequest request;
  request.ticket = 9;
  request.attempt = 1;
  request.walker = 0;
  request.first_atom = 0;
  request.n_shard_atoms = 4;
  request.kind = ShardRequest::ConfigKind::kFull;
  request.full = random_config(4, rng);
  const std::vector<std::byte> bytes = encode_shard_request(request);

  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::byte> truncated(bytes.begin(),
                                     bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(decode_shard_request(truncated), SerializationError)
        << "cut at " << cut;
  }
}

TEST(CommWire, RandomCorruptionThrowsOrDecodesButNeverCrashes) {
  // Flip bytes all over valid buffers: the decoder must either throw
  // SerializationError or produce a (possibly different) valid object —
  // anything else (crash, OOB read under asan, uncaught bad_alloc from a
  // hostile count) fails the test run.
  Rng rng(107);
  ShardResult result;
  result.ticket = 1;
  result.attempt = 2;
  result.first_atom = 0;
  for (int k = 0; k < 8; ++k) result.energies.push_back(0.5 * k);
  const std::vector<std::byte> bytes = encode_shard_result(result);

  for (int round = 0; round < 500; ++round) {
    std::vector<std::byte> corrupt = bytes;
    const std::size_t where = rng.uniform_index(corrupt.size());
    corrupt[where] ^= static_cast<std::byte>(1 + rng.uniform_index(255));
    try {
      (void)decode_shard_result(corrupt);
    } catch (const SerializationError&) {
      // expected for most flips
    }
  }
}

TEST(CommWire, DeltaWithOutOfRangeSiteThrows) {
  ShardRequest request;
  request.ticket = 1;
  request.attempt = 1;
  request.walker = 0;
  request.first_atom = 0;
  request.n_shard_atoms = 4;
  request.kind = ShardRequest::ConfigKind::kDelta;
  request.n_total_atoms = 4;
  request.moved_sites.push_back({99, Vec3{0.0, 0.0, 1.0}});
  EXPECT_THROW(decode_shard_request(encode_shard_request(request)),
               SerializationError);
}

TEST(CommWire, ZeroDirectionThrows) {
  ShardRequest request;
  request.ticket = 1;
  request.attempt = 1;
  request.walker = 0;
  request.first_atom = 0;
  request.n_shard_atoms = 2;
  request.kind = ShardRequest::ConfigKind::kDelta;
  request.n_total_atoms = 2;
  request.moved_sites.push_back({0, Vec3{0.0, 0.0, 0.0}});
  EXPECT_THROW(decode_shard_request(encode_shard_request(request)),
               SerializationError);
}

TEST(CommWire, BadAtomRangeThrows) {
  Rng rng(108);
  ShardRequest request;
  request.ticket = 1;
  request.attempt = 1;
  request.walker = 0;
  request.first_atom = 3;
  request.n_shard_atoms = 5;  // 3 + 5 > 4 atoms
  request.kind = ShardRequest::ConfigKind::kFull;
  request.full = random_config(4, rng);
  EXPECT_THROW(decode_shard_request(encode_shard_request(request)),
               SerializationError);
}

TEST(CommWire, EmptyShardResultRejected) {
  ShardResult result;
  result.ticket = 1;
  result.attempt = 1;
  result.first_atom = 0;
  // encode an empty energy list by hand (the encoder would happily write it)
  EXPECT_THROW(decode_shard_result(encode_shard_result(result)),
               SerializationError);
}

TEST(CommWire, WrongPayloadKindRejectedAcrossCodecs) {
  Rng rng(109);
  wl::EnergyRequest request;
  request.walker = 0;
  request.ticket = 1;
  request.config = random_config(4, rng);
  const std::vector<std::byte> bytes = encode_energy_request(request);
  EXPECT_THROW(decode_shard_request(bytes), SerializationError);
  EXPECT_THROW(decode_shard_result(bytes), SerializationError);
  EXPECT_THROW(decode_energy_result(bytes), SerializationError);
}

}  // namespace
}  // namespace wlsms::comm
