// Integration tests: suspend a Wang-Landau run into a checkpoint, restore
// it into a fresh sampler, and verify the resumed run completes to the same
// physics — the job-boundary workflow of multi-week production campaigns
// (paper Table I: millions of core-hours per DOS).
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "common/units.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"
#include "thermo/observables.hpp"
#include "wl/checkpoint.hpp"
#include "wl/wanglandau.hpp"

namespace wlsms::wl {
namespace {

HeisenbergEnergy fe16_energy() {
  std::vector<double> j = lsms::fe_reference_exchange();
  for (double& v : j) v *= lsms::fe_exchange_energy_scale;
  return HeisenbergEnergy(
      heisenberg::HeisenbergModel(lattice::make_fe_supercell(2), j));
}

WangLandauConfig base_config(const HeisenbergEnergy& energy) {
  Rng rng(5);
  WangLandauConfig config;
  config.grid = thermal_window(
      energy, energy.model().ferromagnetic_energy(), 150.0, rng);
  config.n_walkers = 4;
  config.check_interval = 5000;
  config.max_iteration_steps = 1000000;
  return config;
}

TEST(WlResume, SuspendedAndResumedRunReachesCorrectPhysics) {
  HeisenbergEnergy energy = fe16_energy();
  const WangLandauConfig config = base_config(energy);

  // Phase 1: run partway (to gamma ~ 2^-6) and checkpoint.
  WangLandau phase1(energy, config,
                    std::make_unique<HalvingSchedule>(1.0, 1.2e-2), Rng(1));
  phase1.run();
  ASSERT_TRUE(phase1.converged());
  std::vector<spin::MomentConfiguration> walkers;
  for (std::size_t w = 0; w < phase1.n_walkers(); ++w)
    walkers.push_back(phase1.walker_config(w));
  const Checkpoint cp =
      make_checkpoint(phase1.dos(), phase1.schedule().gamma(),
                      phase1.stats().total_steps, std::move(walkers));

  // Phase 2: fresh sampler seeded from the checkpoint, continuing the
  // halving from the stored gamma down to 1e-5.
  WangLandau phase2(energy, config,
                    std::make_unique<HalvingSchedule>(cp.gamma, 1e-5),
                    Rng(2));
  restore_dos(cp, phase2.dos());
  for (std::size_t w = 0; w < cp.walkers.size(); ++w)
    phase2.set_walker(w, cp.walkers[w]);
  phase2.run();
  ASSERT_TRUE(phase2.converged());

  // The resumed estimate carries correct thermodynamics (Metropolis
  // reference band for this system at 900 K: U = -0.094 +- a few mRy).
  const thermo::DosTable dos = thermo::dos_table(phase2.dos());
  const double u900 = thermo::observables_at(dos, 900.0).internal_energy;
  EXPECT_NEAR(u900, -0.094, 0.012);
}

TEST(WlResume, ResumeSkipsRepeatedEarlyIterations) {
  // Starting from the checkpointed gamma, the resumed run performs only the
  // remaining halvings.
  HeisenbergEnergy energy = fe16_energy();
  const WangLandauConfig config = base_config(energy);

  WangLandau phase1(energy, config,
                    std::make_unique<HalvingSchedule>(1.0, 1.2e-2), Rng(3));
  phase1.run();
  const double gamma_at_suspend = phase1.schedule().gamma();

  WangLandau phase2(energy, config,
                    std::make_unique<HalvingSchedule>(gamma_at_suspend, 1e-4),
                    Rng(4));
  restore_dos(make_checkpoint(phase1.dos(), gamma_at_suspend,
                              phase1.stats().total_steps, {}),
              phase2.dos());
  phase2.run();

  // gamma_at_suspend ~ 2^-7 = 0.0078; reaching 1e-4 needs 7 more halvings.
  EXPECT_EQ(phase2.stats().iterations, 7u);
}

TEST(WlResume, CheckpointRoundTripThroughDiskPreservesState) {
  HeisenbergEnergy energy = fe16_energy();
  const WangLandauConfig config = base_config(energy);
  WangLandau sampler(energy, config,
                     std::make_unique<HalvingSchedule>(1.0, 0.2), Rng(5));
  sampler.run();

  std::vector<spin::MomentConfiguration> walkers;
  for (std::size_t w = 0; w < sampler.n_walkers(); ++w)
    walkers.push_back(sampler.walker_config(w));
  const Checkpoint original =
      make_checkpoint(sampler.dos(), sampler.schedule().gamma(),
                      sampler.stats().total_steps, std::move(walkers));

  const std::string path = ::testing::TempDir() + "wlsms_resume_test.txt";
  save_checkpoint(path, original);
  const Checkpoint loaded = load_checkpoint(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.ln_g, original.ln_g);
  EXPECT_EQ(loaded.visited, original.visited);
  EXPECT_DOUBLE_EQ(loaded.gamma, original.gamma);
  ASSERT_EQ(loaded.walkers.size(), original.walkers.size());
  // Restored walker energies are in-window, so set_walker accepts them.
  WangLandau resumed(energy, config,
                     std::make_unique<HalvingSchedule>(loaded.gamma, 1e-3),
                     Rng(6));
  for (std::size_t w = 0; w < loaded.walkers.size(); ++w)
    EXPECT_NO_THROW(resumed.set_walker(w, loaded.walkers[w]));
}

}  // namespace
}  // namespace wlsms::wl
