// Tests for replica-exchange windowed Wang-Landau (rewl.hpp): window
// layout, seeding, stitching, exact-DOS validation against the single-window
// reference of test_wl_exact.cpp, exchange acceptance, and bit-exact
// determinism under a fixed root seed.
#include "wl/rewl.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "common/units.hpp"
#include "heisenberg/heisenberg.hpp"
#include "lattice/cluster.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"
#include "thermo/observables.hpp"

namespace wlsms::wl {
namespace {

double langevin(double x) { return 1.0 / std::tanh(x) - 1.0 / x; }

HeisenbergEnergy single_bond_energy(double j) {
  return HeisenbergEnergy(heisenberg::HeisenbergModel(
      lattice::make_cubic_cluster(lattice::CubicLattice::kSimpleCubic, 1.0, 2,
                                  1, 1),
      {j}));
}

HeisenbergEnergy fe16_energy() {
  std::vector<double> j = lsms::fe_reference_exchange();
  for (double& v : j) v *= lsms::fe_exchange_energy_scale;
  return HeisenbergEnergy(
      heisenberg::HeisenbergModel(lattice::make_fe_supercell(2), j));
}

TEST(RewlWindows, SingleWindowIsTheGlobalGrid) {
  const DosGridConfig global{-1.0, 1.0, 100, 0.005};
  const auto windows = make_rewl_windows(global, 1, 0.75);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].first_bin, 0u);
  EXPECT_EQ(windows[0].n_bins, 100u);
  EXPECT_DOUBLE_EQ(windows[0].grid.e_min, global.e_min);
  EXPECT_DOUBLE_EQ(windows[0].grid.e_max, global.e_max);
}

TEST(RewlWindows, LayoutCoversRangeWithAlignedOverlappingWindows) {
  const DosGridConfig global{-2.0, 3.0, 240, 0.004};
  for (std::size_t n : {2u, 4u, 8u}) {
    for (double overlap : {0.35, 0.5, 0.75}) {
      const auto windows = make_rewl_windows(global, n, overlap);
      ASSERT_EQ(windows.size(), n);
      EXPECT_EQ(windows.front().first_bin, 0u);
      EXPECT_EQ(windows.back().first_bin + windows.back().n_bins, 240u);
      const double h = (global.e_max - global.e_min) / 240.0;
      for (const RewlWindow& w : windows) {
        // Bin-aligned: window edges sit on global bin boundaries, with the
        // same bin width.
        EXPECT_NEAR(w.grid.e_min,
                    global.e_min + static_cast<double>(w.first_bin) * h,
                    1e-12);
        EXPECT_EQ(w.grid.bins, w.n_bins);
        EXPECT_NEAR((w.grid.e_max - w.grid.e_min) /
                        static_cast<double>(w.n_bins),
                    h, 1e-12);
        // The absolute kernel width is preserved.
        EXPECT_NEAR(w.grid.kernel_width_fraction * (w.grid.e_max - w.grid.e_min),
                    global.kernel_width_fraction * (global.e_max - global.e_min),
                    1e-12);
      }
      for (std::size_t i = 0; i + 1 < n; ++i) {
        EXPECT_LT(windows[i].first_bin, windows[i + 1].first_bin);
        // At least two shared bins (needed for exchange and stitching).
        EXPECT_GE(windows[i].first_bin + windows[i].n_bins,
                  windows[i + 1].first_bin + 2);
      }
      // Requested overlap fraction is realized within bin granularity.
      const double achieved =
          static_cast<double>(windows[0].first_bin + windows[0].n_bins -
                              windows[1].first_bin) /
          static_cast<double>(windows[0].n_bins);
      EXPECT_NEAR(achieved, overlap, 0.15);
    }
  }
}

TEST(RewlWindows, InvalidArgumentsThrow) {
  const DosGridConfig global{-1.0, 1.0, 100, 0.005};
  EXPECT_THROW(make_rewl_windows(global, 0, 0.75), ContractError);
  EXPECT_THROW(make_rewl_windows(global, 2, 1.0), ContractError);
  EXPECT_THROW(make_rewl_windows(global, 2, -0.1), ContractError);
  // Too coarse a grid for the requested window count.
  EXPECT_THROW(make_rewl_windows({-1.0, 1.0, 6, 0.05}, 4, 0.0), ContractError);
}

TEST(RewlSeeding, ReachesNarrowBands) {
  const HeisenbergEnergy energy = single_bond_energy(1.0);
  Rng rng(3);
  // Low, middle and high slices of the single-bond spectrum [-1, 1].
  for (const auto& [lo, hi] : std::vector<std::pair<double, double>>{
           {-1.0, -0.6}, {-0.2, 0.2}, {0.6, 1.0}}) {
    const spin::MomentConfiguration config =
        seed_configuration_in_band(energy, lo, hi, rng);
    const double e = energy.total_energy(config);
    EXPECT_GE(e, lo);
    EXPECT_LE(e, hi);
  }
}

TEST(RewlStitch, SingleFullWindowIsIdentityUpToNormalization) {
  const DosGridConfig global{0.0, 1.0, 8, 0.05};
  DosGrid estimate(global);
  estimate.set_ln_g_values({5, 6, 7, 8, 9, 10, 11, 12});
  estimate.set_visited({1, 1, 1, 1, 1, 1, 1, 1});
  const DosGrid stitched =
      stitch_window_estimates(global, {{0, 8, global}}, {&estimate});
  // Same shape, shifted so the minimum visited value is zero.
  for (std::size_t b = 0; b < 8; ++b)
    EXPECT_DOUBLE_EQ(stitched.ln_g_values()[b], static_cast<double>(b));
}

TEST(RewlStitch, TwoWindowsOfOneLineRecoverTheLine) {
  // Both windows sample ln g = 3 E exactly (up to window-local constants);
  // stitching must recover one straight line across the seam.
  const DosGridConfig global{0.0, 1.0, 20, 0.01};
  const auto windows = make_rewl_windows(global, 2, 0.6);
  std::vector<DosGrid> parts;
  for (const RewlWindow& w : windows) {
    DosGrid part(w.grid);
    std::vector<double> values(w.n_bins);
    for (std::size_t k = 0; k < w.n_bins; ++k)
      values[k] = 3.0 * part.bin_center(k) + (w.first_bin == 0 ? 7.0 : -4.0);
    part.set_ln_g_values(values);
    part.set_visited(std::vector<std::uint8_t>(w.n_bins, 1));
    parts.push_back(std::move(part));
  }
  const DosGrid stitched = stitch_window_estimates(
      global, windows, {&parts[0], &parts[1]});
  for (std::size_t b = 0; b < 20; ++b) {
    ASSERT_TRUE(stitched.visited()[b]);
    EXPECT_NEAR(stitched.ln_g_values()[b] - stitched.ln_g_values()[0],
                3.0 * (stitched.bin_center(b) - stitched.bin_center(0)), 1e-9);
  }
}

RewlConfig single_bond_config() {
  RewlConfig config;
  config.base.grid = {-1.02, 1.02, 102, 0.005};
  config.base.n_walkers = 2;
  config.base.check_interval = 2000;
  config.base.flatness = 0.8;
  config.base.max_iteration_steps = 300000;
  config.base.max_steps = 40000000;
  config.exchange_interval = 2000;
  return config;
}

TEST(Rewl, StitchedDosMatchesSingleWindowReference) {
  // The same validation test_wl_exact.cpp applies to the single-window
  // sampler: on one Heisenberg bond, ln g is exactly flat and the internal
  // energy is the Langevin result. Run the identical configuration once
  // with one window (the single-master reference) and once with four
  // windows; both must pass, and they must agree with each other.
  const HeisenbergEnergy energy = single_bond_energy(1.0);
  RewlConfig config = single_bond_config();

  config.n_windows = 1;
  const RewlResult reference =
      run_rewl(energy, config, HalvingSchedule(1.0, 1e-5), Rng(11));

  config.n_windows = 4;
  config.overlap = 0.75;
  const RewlResult rewl =
      run_rewl(energy, config, HalvingSchedule(1.0, 1e-5), Rng(11));

  // Flatness of the stitched interior, same tolerance as WlExact.
  const auto series = rewl.stitched.visited_series();
  ASSERT_GT(series.size(), 90u);
  double lo = 1e300;
  double hi = -1e300;
  for (std::size_t i = 3; i + 3 < series.size(); ++i) {
    lo = std::min(lo, series[i].second);
    hi = std::max(hi, series[i].second);
  }
  EXPECT_LT(hi - lo, 0.8);

  // Same internal energy as the reference run and as the exact result.
  const thermo::DosTable table = thermo::dos_table(rewl.stitched);
  const thermo::DosTable ref_table = thermo::dos_table(reference.stitched);
  for (double x : {0.5, 1.0, 2.0}) {
    const double t = 1.0 / (units::k_boltzmann_ry * x);
    const double u = thermo::observables_at(table, t).internal_energy;
    EXPECT_NEAR(u, -langevin(x), 0.03) << "x=" << x;
    EXPECT_NEAR(u, thermo::observables_at(ref_table, t).internal_energy, 0.05)
        << "x=" << x;
  }
}

TEST(Rewl, ExchangeAcceptanceIsInOpenInterval) {
  // On the 16-atom iron surrogate the DOS varies by many ln-units across
  // a window, so replica exchange must reject some swaps — and the overlap
  // guarantees it accepts some.
  const HeisenbergEnergy energy = fe16_energy();
  Rng window_rng(5);
  RewlConfig config;
  config.base.grid = thermal_window(
      energy, energy.model().ferromagnetic_energy(), 150.0, window_rng);
  config.base.n_walkers = 2;
  config.base.check_interval = 5000;
  config.base.flatness = 0.8;
  config.base.max_iteration_steps = 1000000;
  config.base.max_steps = 120000000;
  config.n_windows = 4;
  config.overlap = 0.75;
  config.exchange_interval = 2000;

  const RewlResult result =
      run_rewl(energy, config, HalvingSchedule(1.0, 1e-4), Rng(17));
  EXPECT_GT(result.exchange_attempts, 0u);
  EXPECT_GT(result.exchange_accepts, 0u);
  EXPECT_LT(result.exchange_accepts, result.exchange_attempts);
  const double acceptance = static_cast<double>(result.exchange_accepts) /
                            static_cast<double>(result.exchange_attempts);
  EXPECT_GT(acceptance, 0.0);
  EXPECT_LT(acceptance, 1.0);
}

TEST(Rewl, FixedSeedReproducesBitIdenticalOutput) {
  // The concurrency structure (per-window Rng streams split from one root
  // seed, barrier-synchronized rounds, exchanges on the coordinator) makes
  // the run independent of thread scheduling: identical seeds must give
  // byte-identical stitched estimates and identical exchange statistics.
  const HeisenbergEnergy energy = single_bond_energy(1.0);
  RewlConfig config = single_bond_config();
  config.n_windows = 3;
  config.overlap = 0.5;

  const RewlResult a =
      run_rewl(energy, config, HalvingSchedule(1.0, 1e-3), Rng(29));
  const RewlResult b =
      run_rewl(energy, config, HalvingSchedule(1.0, 1e-3), Rng(29));

  EXPECT_EQ(a.stitched.ln_g_values(), b.stitched.ln_g_values());
  EXPECT_EQ(a.stitched.visited(), b.stitched.visited());
  EXPECT_EQ(a.exchange_attempts, b.exchange_attempts);
  EXPECT_EQ(a.exchange_accepts, b.exchange_accepts);
  EXPECT_EQ(a.exchange_ineligible, b.exchange_ineligible);
  EXPECT_EQ(a.rounds, b.rounds);
  ASSERT_EQ(a.per_window.size(), b.per_window.size());
  for (std::size_t w = 0; w < a.per_window.size(); ++w) {
    EXPECT_EQ(a.per_window[w].total_steps, b.per_window[w].total_steps);
    EXPECT_EQ(a.per_window[w].accepted_steps, b.per_window[w].accepted_steps);
  }

  // A different seed gives a different walk (sanity check that the test
  // above is not vacuous).
  const RewlResult c =
      run_rewl(energy, config, HalvingSchedule(1.0, 1e-3), Rng(30));
  EXPECT_NE(a.stitched.ln_g_values(), c.stitched.ln_g_values());
}

TEST(Rewl, PerWindowStatsAndWindowDosAreReported) {
  const HeisenbergEnergy energy = single_bond_energy(1.0);
  RewlConfig config = single_bond_config();
  config.n_windows = 2;
  const RewlResult result =
      run_rewl(energy, config, HalvingSchedule(1.0, 1e-3), Rng(7));
  ASSERT_EQ(result.per_window.size(), 2u);
  ASSERT_EQ(result.window_dos.size(), 2u);
  ASSERT_EQ(result.windows.size(), 2u);
  for (std::size_t w = 0; w < 2; ++w) {
    EXPECT_GT(result.per_window[w].total_steps, 0u);
    EXPECT_GT(result.per_window[w].iterations, 0u);
    EXPECT_EQ(result.window_dos[w].bins(), result.windows[w].n_bins);
  }
  EXPECT_GT(result.rounds, 0u);
}

}  // namespace
}  // namespace wlsms::wl
