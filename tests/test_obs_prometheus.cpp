// Prometheus text exposition and the exponential histogram bucket helper:
// bucket edges and value->bucket assignment, name mangling (dots, tenants,
// per-rank clock gauges -> labels), and the exposition format invariants a
// scraper relies on (one # TYPE per family, cumulative buckets, +Inf).
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"

namespace wlsms::obs {
namespace {

TEST(ExponentialBounds, EdgesAreGeometric) {
  const std::vector<double> bounds = exponential_bounds(0.01, 4.0, 12);
  ASSERT_EQ(bounds.size(), 12u);
  EXPECT_DOUBLE_EQ(bounds.front(), 0.01);
  for (std::size_t k = 1; k < bounds.size(); ++k) {
    EXPECT_DOUBLE_EQ(bounds[k], bounds[k - 1] * 4.0);
    EXPECT_LT(bounds[k - 1], bounds[k]);
  }
  // 0.01 ms .. ~42 s: the serve stage range from sub-queue-tick to a full
  // batch solve fits in 12 buckets.
  EXPECT_NEAR(bounds.back(), 0.01 * std::pow(4.0, 11.0), 1e-9);
}

TEST(ExponentialBounds, RejectsDegenerateParameters) {
  EXPECT_THROW(exponential_bounds(0.0, 2.0, 4), Error);
  EXPECT_THROW(exponential_bounds(-1.0, 2.0, 4), Error);
  EXPECT_THROW(exponential_bounds(1.0, 1.0, 4), Error);
  EXPECT_THROW(exponential_bounds(1.0, 2.0, 0), Error);
}

TEST(ExponentialBounds, BucketAssignmentMatchesEdges) {
  Histogram& histogram = Registry::instance().histogram(
      "test.exponential_assignment", exponential_bounds(1.0, 2.0, 4));
  // bounds 1, 2, 4, 8
  histogram.observe(0.5);   // <= 1   -> bucket 0
  histogram.observe(1.0);   // == 1   -> bucket 0 (boundary belongs below)
  histogram.observe(1.5);   // <= 2   -> bucket 1
  histogram.observe(4.0);   // == 4   -> bucket 2
  histogram.observe(7.99);  // <= 8   -> bucket 3
  histogram.observe(64.0);  // > 8    -> overflow
  const HistogramSnapshot snapshot = histogram.snapshot_values();
  ASSERT_EQ(snapshot.counts.size(), 5u);  // 4 buckets + overflow
  EXPECT_EQ(snapshot.counts[0], 2u);
  EXPECT_EQ(snapshot.counts[1], 1u);
  EXPECT_EQ(snapshot.counts[2], 1u);
  EXPECT_EQ(snapshot.counts[3], 1u);
  EXPECT_EQ(snapshot.counts[4], 1u);
  EXPECT_EQ(snapshot.total, 6u);
}

TEST(PrometheusExposition, CountersGaugesAndNameMangling) {
  MetricsSnapshot snapshot;
  snapshot.counters["serve.results"] = 7;
  snapshot.gauges["wl.gamma"] = 0.5;
  const std::string text = expose_prometheus(snapshot);
  EXPECT_NE(text.find("# TYPE serve_results counter\nserve_results 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE wl_gamma gauge\nwl_gamma 0.5\n"),
            std::string::npos);
}

TEST(PrometheusExposition, RankGaugesBecomeOneLabeledFamily) {
  MetricsSnapshot snapshot;
  snapshot.gauges["comm.clock_offset_us.rank0"] = -12.5;
  snapshot.gauges["comm.clock_offset_us.rank1"] = 3.0;
  snapshot.gauges["comm.clock_offset_us"] = 0.25;  // this process's own
  const std::string text = expose_prometheus(snapshot);
  // One TYPE header for the family, every rank a labeled series.
  std::size_t headers = 0;
  for (std::size_t at = text.find("# TYPE comm_clock_offset_us gauge");
       at != std::string::npos;
       at = text.find("# TYPE comm_clock_offset_us gauge", at + 1))
    ++headers;
  EXPECT_EQ(headers, 1u);
  EXPECT_NE(text.find("comm_clock_offset_us{rank=\"0\"} -12.5"),
            std::string::npos);
  EXPECT_NE(text.find("comm_clock_offset_us{rank=\"1\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("comm_clock_offset_us 0.25"), std::string::npos);
}

TEST(PrometheusExposition, TenantHistogramsShareAFamilyWithLabels) {
  MetricsSnapshot snapshot;
  HistogramSnapshot solve;
  solve.upper_bounds = {1.0, 2.0};
  solve.counts = {1, 2, 1};  // 1 in le=1, 2 in le=2, 1 overflow
  solve.total = 4;
  solve.sum = 6.5;
  snapshot.histograms["serve.tenant.alice.stage_ms.solve"] = solve;
  snapshot.histograms["serve.tenant.bob.stage_ms.solve"] = solve;
  const std::string text = expose_prometheus(snapshot);

  std::size_t headers = 0;
  for (std::size_t at =
           text.find("# TYPE serve_tenant_stage_ms_solve histogram");
       at != std::string::npos;
       at = text.find("# TYPE serve_tenant_stage_ms_solve histogram", at + 1))
    ++headers;
  EXPECT_EQ(headers, 1u);
  // Buckets are cumulative; +Inf equals the total observation count.
  EXPECT_NE(text.find("serve_tenant_stage_ms_solve_bucket{tenant=\"alice\","
                      "le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("serve_tenant_stage_ms_solve_bucket{tenant=\"alice\","
                      "le=\"2\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("serve_tenant_stage_ms_solve_bucket{tenant=\"alice\","
                      "le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("serve_tenant_stage_ms_solve_sum{tenant=\"alice\"} "
                      "6.5"),
            std::string::npos);
  EXPECT_NE(text.find("serve_tenant_stage_ms_solve_count{tenant=\"bob\"} 4"),
            std::string::npos);
}

TEST(PrometheusExposition, EveryLineIsHeaderOrSeries) {
  // Minimal parse of the 0.0.4 text format: every line is either a # TYPE
  // header or `name[{labels}] value` with a finite-or-special value token.
  MetricsSnapshot snapshot;
  snapshot.counters["a.b"] = 1;
  snapshot.gauges["nan.gauge"] = std::nan("");
  HistogramSnapshot h;
  h.upper_bounds = {1.0};
  h.counts = {0, 0};
  snapshot.histograms["serve.stage_ms.queue_wait"] = h;
  const std::string text = expose_prometheus(snapshot);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.rfind("# TYPE ", 0) == 0) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    EXPECT_TRUE(value == "NaN" || value == "+Inf" || value == "-Inf" ||
                value.find_first_not_of("-+.eE0123456789") ==
                    std::string::npos)
        << line;
  }
  EXPECT_NE(text.find("nan_gauge NaN"), std::string::npos);
}

}  // namespace
}  // namespace wlsms::obs
