// Tests for the flop-accounting layer and the wall-clock timer.
#include "perf/flops.hpp"
#include "perf/timer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace wlsms::perf {
namespace {

TEST(Flops, ThreadCounterIsMonotonic) {
  const std::uint64_t before = thread_flops();
  add_flops(123);
  EXPECT_EQ(thread_flops(), before + 123);
  add_flops(1);
  EXPECT_EQ(thread_flops(), before + 124);
}

TEST(Flops, WindowMeasuresDelta) {
  FlopWindow window;
  add_flops(1000);
  EXPECT_GE(window.elapsed(), 1000u);
}

TEST(Flops, TotalAggregatesAcrossThreads) {
  FlopWindow window;
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 1 << 21;  // exceeds drain threshold
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([] { add_flops(kPerThread); });
  for (std::thread& t : threads) t.join();
  EXPECT_GE(window.elapsed(), kThreads * kPerThread);
}

TEST(FlopCosts, GemmCountsEightMNK) {
  EXPECT_EQ(cost::zgemm(2, 3, 4), 8u * 2 * 3 * 4);
  EXPECT_EQ(cost::zgemm(1, 1, 1), 8u);
}

TEST(FlopCosts, GetrfIsCubicOverThree) {
  EXPECT_EQ(cost::zgetrf(3), 8u * 27 / 3);
  // Monotone in n.
  EXPECT_LT(cost::zgetrf(100), cost::zgetrf(101));
}

TEST(FlopCosts, GetrsIsQuadraticPerRhs) {
  EXPECT_EQ(cost::zgetrs(10, 1), 800u);
  EXPECT_EQ(cost::zgetrs(10, 3), 2400u);
}

TEST(Flops, KernelAttributionIsSeparated) {
  FlopWindow window;
  add_flops(Kernel::kZgemm, 600);
  add_flops(Kernel::kTrsm, 250);
  add_flops(Kernel::kPanel, 100);
  add_flops(50);  // legacy overload books under kOther
  EXPECT_EQ(window.elapsed(Kernel::kZgemm), 600u);
  EXPECT_EQ(window.elapsed(Kernel::kTrsm), 250u);
  EXPECT_EQ(window.elapsed(Kernel::kPanel), 100u);
  EXPECT_EQ(window.elapsed(Kernel::kOther), 50u);
  EXPECT_EQ(window.elapsed(), 1000u);
  EXPECT_DOUBLE_EQ(window.gemm_fraction(), 0.6);
}

TEST(Flops, GemmFractionOfEmptyWindowIsZero) {
  const FlopWindow window;
  EXPECT_DOUBLE_EQ(window.gemm_fraction(), 0.0);
}

TEST(FlopCosts, TrsmUnitLowerCountsFusedMultiplyAdds) {
  // n(n-1)/2 complex FMAs (8 flops each) per right-hand side.
  EXPECT_EQ(cost::ztrsm_unit_lower(3, 2), 8u * 3 * 2 / 2 * 2);
  EXPECT_EQ(cost::ztrsm_unit_lower(1, 5), 0u);
  EXPECT_EQ(cost::ztrsm_unit_lower(0, 5), 0u);
}

TEST(FlopCosts, PanelCountsByColumn) {
  // One column: just the pivot reciprocal.
  EXPECT_EQ(cost::zgetrf_panel(1, 1), 6u);
  // Two columns of a 2 x 2: j=0 books 6 + 6 + 8, j=1 books 6.
  EXPECT_EQ(cost::zgetrf_panel(2, 2), 26u);
  // Tall panel, one column: reciprocal + (m-1) scalings.
  EXPECT_EQ(cost::zgetrf_panel(4, 1), 6u + 6u * 3);
}

TEST(FlopCosts, BlockedDegeneratesToPanelForWideBlocks) {
  // nb >= n: a single panel, no TRSM or GEMM terms.
  EXPECT_EQ(cost::zgetrf_blocked(30, 64), cost::zgetrf_panel(30, 30));
}

TEST(FlopCosts, BlockedSumsPanelTrsmGemmTerms) {
  // n=4, nb=2: panel(4,2) + trsm(2,2) + gemm(2,2,2) + panel(2,2).
  const std::uint64_t expected = cost::zgetrf_panel(4, 2) +
                                 cost::ztrsm_unit_lower(2, 2) +
                                 cost::zgemm(2, 2, 2) + cost::zgetrf_panel(2, 2);
  EXPECT_EQ(cost::zgetrf_blocked(4, 2), expected);
}

TEST(FlopCosts, BlockedApproachesDenseCountFromBelow) {
  // Both count the same O(n^3) elimination; the panel/blocked forms carry
  // the exact lower-order terms, the classical 8n^3/3 only the leading one.
  const std::uint64_t classic = cost::zgetrf(128);
  const std::uint64_t blocked = cost::zgetrf_blocked(128, 16);
  const double rel = std::abs(static_cast<double>(classic) -
                              static_cast<double>(blocked)) /
                     static_cast<double>(classic);
  EXPECT_LT(rel, 0.05);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double t = timer.seconds();
  EXPECT_GE(t, 0.015);
  EXPECT_LT(t, 5.0);
}

TEST(Timer, ResetRestartsClock) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.reset();
  EXPECT_LT(timer.seconds(), 0.015);
}

}  // namespace
}  // namespace wlsms::perf
