// Tests for the flop-accounting layer and the wall-clock timer.
#include "perf/flops.hpp"
#include "perf/timer.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace wlsms::perf {
namespace {

TEST(Flops, ThreadCounterIsMonotonic) {
  const std::uint64_t before = thread_flops();
  add_flops(123);
  EXPECT_EQ(thread_flops(), before + 123);
  add_flops(1);
  EXPECT_EQ(thread_flops(), before + 124);
}

TEST(Flops, WindowMeasuresDelta) {
  FlopWindow window;
  add_flops(1000);
  EXPECT_GE(window.elapsed(), 1000u);
}

TEST(Flops, TotalAggregatesAcrossThreads) {
  FlopWindow window;
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 1 << 21;  // exceeds drain threshold
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([] { add_flops(kPerThread); });
  for (std::thread& t : threads) t.join();
  EXPECT_GE(window.elapsed(), kThreads * kPerThread);
}

TEST(FlopCosts, GemmCountsEightMNK) {
  EXPECT_EQ(cost::zgemm(2, 3, 4), 8u * 2 * 3 * 4);
  EXPECT_EQ(cost::zgemm(1, 1, 1), 8u);
}

TEST(FlopCosts, GetrfIsCubicOverThree) {
  EXPECT_EQ(cost::zgetrf(3), 8u * 27 / 3);
  // Monotone in n.
  EXPECT_LT(cost::zgetrf(100), cost::zgetrf(101));
}

TEST(FlopCosts, GetrsIsQuadraticPerRhs) {
  EXPECT_EQ(cost::zgetrs(10, 1), 800u);
  EXPECT_EQ(cost::zgetrs(10, 3), 2400u);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double t = timer.seconds();
  EXPECT_GE(t, 0.015);
  EXPECT_LT(t, 5.0);
}

TEST(Timer, ResetRestartsClock) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.reset();
  EXPECT_LT(timer.seconds(), 0.015);
}

}  // namespace
}  // namespace wlsms::perf
