// Tests for the single-site scattering model.
#include "lsms/scattering.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "lsms/fe_parameters.hpp"

namespace wlsms::lsms {
namespace {

TEST(Momentum, PositiveRealEnergyGivesRealMomentum) {
  const Complex k = momentum(Complex{0.25, 0.0});
  EXPECT_NEAR(k.real(), 0.5, 1e-14);
  EXPECT_NEAR(k.imag(), 0.0, 1e-14);
}

TEST(Momentum, UpperHalfPlaneGivesDecayingBranch) {
  for (double re : {0.1, 0.5, 1.0}) {
    for (double im : {0.01, 0.1, 0.5}) {
      const Complex k = momentum(Complex{re, im});
      EXPECT_GT(k.imag(), 0.0);
    }
  }
}

TEST(FreePropagator, DecaysWithDistanceOffAxis) {
  const Complex z{0.3, 0.1};
  const double g1 = std::abs(free_propagator(2.0, z));
  const double g2 = std::abs(free_propagator(4.0, z));
  const double g3 = std::abs(free_propagator(8.0, z));
  EXPECT_GT(g1, g2);
  EXPECT_GT(g2, g3);
  // Exponential, not just 1/r: the ratio beats the geometric one.
  EXPECT_GT(g1 / g2, 2.0);
}

TEST(FreePropagator, OnRealAxisIsSphericalWave) {
  // |g0(r)| = 1/r for real positive energy.
  const Complex z{0.49, 0.0};
  EXPECT_NEAR(std::abs(free_propagator(2.0, z)), 0.5, 1e-12);
  EXPECT_NEAR(std::abs(free_propagator(5.0, z)), 0.2, 1e-12);
}

TEST(FreePropagator, NonPositiveDistanceThrows) {
  EXPECT_THROW(free_propagator(0.0, Complex{0.3, 0.1}), ContractError);
  EXPECT_THROW(free_propagator(-1.0, Complex{0.3, 0.1}), ContractError);
}

TEST(Scatterer, PhaseShiftCrossesPiOverTwoAtResonance) {
  const Scatterer s(fe_scattering_parameters());
  const ScatteringParameters& p = s.params();
  EXPECT_NEAR(s.phase_shift_up(p.resonance_up), std::acos(-1.0) / 2.0, 1e-12);
  EXPECT_NEAR(s.phase_shift_down(p.resonance_down), std::acos(-1.0) / 2.0,
              1e-12);
  // Below resonance the shift is small, above it approaches pi.
  EXPECT_LT(s.phase_shift_up(p.resonance_up - 5.0 * p.width), 0.2);
  EXPECT_GT(s.phase_shift_up(p.resonance_up + 5.0 * p.width), 2.9);
}

TEST(Scatterer, UnitarityOnRealAxis) {
  // With this convention t = -(1/k) sin(delta) e^{i delta}, so the unitary
  // S-matrix is S = e^{2 i delta} = 1 - 2 i k t: |S| = 1 on the real axis.
  const Scatterer s(fe_scattering_parameters());
  for (double e : {0.1, 0.25, 0.32, 0.5, 0.8}) {
    const Complex z{e, 0.0};
    const Complex k = momentum(z);
    const Complex s_matrix = 1.0 - 2.0 * Complex{0, 1} * k * s.t_up(z);
    EXPECT_NEAR(std::abs(s_matrix), 1.0, 1e-12);
  }
}

TEST(Scatterer, AnalyticInUpperHalfPlane) {
  // The resonance pole sits at z = E_res - i Gamma/2 (lower half-plane);
  // on an upper-half-plane grid |t| must stay bounded.
  const Scatterer s(fe_scattering_parameters());
  for (double re = 0.05; re < 1.0; re += 0.05)
    for (double im : {0.02, 0.1, 0.3}) {
      const Complex t = s.t_up(Complex{re, im});
      ASSERT_TRUE(std::isfinite(t.real()) && std::isfinite(t.imag()));
      ASSERT_LT(std::abs(t), 50.0);
    }
}

TEST(Scatterer, ExchangeSplittingSeparatesChannels) {
  const Scatterer s(fe_scattering_parameters());
  const Complex z{0.32, 0.05};
  EXPECT_GT(std::abs(s.t_up(z) - s.t_down(z)), 1e-3);
}

TEST(Scatterer, TMatrixAlongZIsDiagonal) {
  const Scatterer s(fe_scattering_parameters());
  const Complex z{0.3, 0.1};
  const spin::Spin2x2 t = s.t_matrix({0.0, 0.0, 1.0}, z);
  EXPECT_NEAR(std::abs(t[1]), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(t[2]), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(t[0] - s.t_up(z)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(t[3] - s.t_down(z)), 0.0, 1e-14);
}

TEST(Scatterer, TMatrixAlongMinusZSwapsChannels) {
  const Scatterer s(fe_scattering_parameters());
  const Complex z{0.3, 0.1};
  const spin::Spin2x2 t = s.t_matrix({0.0, 0.0, -1.0}, z);
  EXPECT_NEAR(std::abs(t[0] - s.t_down(z)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(t[3] - s.t_up(z)), 0.0, 1e-14);
}

TEST(Scatterer, TInverseIsTrueInverse) {
  const Scatterer s(fe_scattering_parameters());
  Rng rng(11);
  const Complex z{0.4, 0.08};
  for (int k = 0; k < 8; ++k) {
    const Vec3 e = rng.unit_vector();
    const spin::Spin2x2 t = s.t_matrix(e, z);
    const spin::Spin2x2 ti = s.t_inverse(e, z);
    const spin::Spin2x2 prod = spin::multiply2(t, ti);
    EXPECT_NEAR(std::abs(prod[0] - Complex{1, 0}), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(prod[3] - Complex{1, 0}), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(prod[1]), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(prod[2]), 0.0, 1e-12);
  }
}

TEST(Scatterer, InvalidParametersThrow) {
  ScatteringParameters p = fe_scattering_parameters();
  p.width = 0.0;
  EXPECT_THROW(Scatterer{p}, ContractError);
  p = fe_scattering_parameters();
  p.fermi_energy = p.band_bottom - 0.1;
  EXPECT_THROW(Scatterer{p}, ContractError);
}

}  // namespace
}  // namespace wlsms::lsms
