// Tests for the shared binary serialization schema (common/serial): the
// primitive codecs, the magic/version/kind header, and the bounds-checked
// decoder that must throw (never crash) on truncated or hostile input.
#include "common/serial.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

namespace wlsms::serial {
namespace {

TEST(Serial, PrimitiveRoundTrip) {
  Encoder e;
  e.put_u8(0xab);
  e.put_u32(0xdeadbeefu);
  e.put_u64(0x0123456789abcdefULL);
  e.put_double(-1.5);
  const std::vector<std::byte> bytes = e.take();
  ASSERT_EQ(bytes.size(), 1u + 4u + 8u + 8u);

  Decoder d(bytes);
  EXPECT_EQ(d.get_u8(), 0xab);
  EXPECT_EQ(d.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(d.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(d.get_double(), -1.5);
  EXPECT_EQ(d.remaining(), 0u);
  EXPECT_NO_THROW(d.expect_end());
}

TEST(Serial, IntegersAreLittleEndian) {
  Encoder e;
  e.put_u32(0x04030201u);
  const std::vector<std::byte> bytes = e.take();
  EXPECT_EQ(std::to_integer<int>(bytes[0]), 1);
  EXPECT_EQ(std::to_integer<int>(bytes[1]), 2);
  EXPECT_EQ(std::to_integer<int>(bytes[2]), 3);
  EXPECT_EQ(std::to_integer<int>(bytes[3]), 4);
}

TEST(Serial, DoublesSurviveBitExactly) {
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           -std::numeric_limits<double>::infinity(),
                           std::nextafter(1.0, 2.0)};
  Encoder e;
  for (double v : values) e.put_double(v);
  Decoder d(e.bytes());
  for (double v : values) {
    const double back = d.get_double();
    EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0);
  }
  // NaN keeps its payload bits too.
  Encoder en;
  en.put_double(std::numeric_limits<double>::quiet_NaN());
  Decoder dn(en.bytes());
  const double nan_back = dn.get_double();
  EXPECT_TRUE(std::isnan(nan_back));
}

TEST(Serial, TruncatedReadsThrow) {
  Encoder e;
  e.put_u64(7);
  const std::vector<std::byte> bytes = e.take();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    Decoder d(bytes.data(), cut);
    EXPECT_THROW(d.get_u64(), SerializationError) << "cut at " << cut;
  }
}

TEST(Serial, TrailingGarbageThrows) {
  Encoder e;
  e.put_u32(1);
  e.put_u8(0);  // one byte the reader will not consume
  Decoder d(e.bytes());
  (void)d.get_u32();
  EXPECT_THROW(d.expect_end(), SerializationError);
}

TEST(Serial, HostileSequenceCountRejectedBeforeAllocation) {
  Decoder d(nullptr, 0);
  // A count advertising ~2^61 doubles must be rejected up front.
  EXPECT_THROW(d.expect_sequence(~std::uint64_t{0} / 8, sizeof(double)),
               SerializationError);
}

TEST(Serial, HeaderRoundTrip) {
  Encoder e;
  write_header(e, PayloadKind::kCheckpoint);
  Decoder d(e.bytes());
  EXPECT_NO_THROW(read_header(d, PayloadKind::kCheckpoint));
  EXPECT_EQ(d.remaining(), 0u);
}

TEST(Serial, HeaderBadMagicThrows) {
  Encoder e;
  e.put_u32(kMagic ^ 1);
  e.put_u32(kSchemaVersion);
  e.put_u32(static_cast<std::uint32_t>(PayloadKind::kCheckpoint));
  Decoder d(e.bytes());
  EXPECT_THROW(read_header(d, PayloadKind::kCheckpoint), SerializationError);
}

TEST(Serial, HeaderVersionMismatchThrows) {
  Encoder e;
  e.put_u32(kMagic);
  e.put_u32(kSchemaVersion + 1);
  e.put_u32(static_cast<std::uint32_t>(PayloadKind::kCheckpoint));
  Decoder d(e.bytes());
  EXPECT_THROW(read_header(d, PayloadKind::kCheckpoint), SerializationError);
}

TEST(Serial, HeaderKindMismatchThrows) {
  Encoder e;
  write_header(e, PayloadKind::kShardRequest);
  Decoder d(e.bytes());
  EXPECT_THROW(read_header(d, PayloadKind::kShardResult), SerializationError);
}

TEST(Serial, SerializationErrorIsWlsmsError) {
  // Satellite contract: everything thrown by the schema is a wlsms::Error,
  // so callers can catch the library root.
  try {
    Decoder d(nullptr, 0);
    (void)d.get_u8();
    FAIL() << "expected a throw";
  } catch (const Error&) {
    SUCCEED();
  }
}

}  // namespace
}  // namespace wlsms::serial
