// Tests for the discrete-event simulator of the WL-LSMS machine runs
// (the substitution behind Fig. 7 / Tables I-II, DESIGN.md §2).
#include "cluster/des.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

namespace wlsms::cluster {
namespace {

JobDescription paper_job(std::size_t walkers) {
  JobDescription job;
  job.n_atoms = 1024;
  job.n_walkers = walkers;
  job.steps_per_walker = 20;
  job.fidelity.lmax = 3;
  job.fidelity.liz_atoms = 65;
  job.fidelity.contour_points = 20;
  job.compute_jitter = 0.005;
  return job;
}

TEST(Des, CoreCountMatchesPaperLayout) {
  // 144 walkers x 1024 atoms + the 8-core driver node = 147,464 cores,
  // the number the paper headlines.
  const SimulationResult r =
      simulate_wl_lsms(jaguar_xt5(), paper_job(144));
  EXPECT_EQ(r.cores, 147464u);
}

TEST(Des, ProcessesEveryRequestedEvaluation) {
  const SimulationResult r = simulate_wl_lsms(jaguar_xt5(), paper_job(10));
  EXPECT_EQ(r.results_processed, 10u * 20u);
}

TEST(Des, SustainedPerformanceNearPaperTableTwo) {
  // Table II: 1.03 PFlop/s and 75.8 % of peak on 147,464 cores.
  const SimulationResult r =
      simulate_wl_lsms(jaguar_xt5(), paper_job(144));
  EXPECT_GT(r.sustained_flops, 0.85e15);
  EXPECT_LT(r.sustained_flops, 1.15e15);
  EXPECT_NEAR(r.fraction_of_peak, 0.758, 0.05);
}

TEST(Des, FractionOfPeakRoughlyConstantAcrossScales) {
  const MachineDescription machine = jaguar_xt5();
  const auto results = weak_scaling(machine, paper_job(10), {10, 50, 100, 144});
  for (const SimulationResult& r : results)
    EXPECT_NEAR(r.fraction_of_peak, results.front().fraction_of_peak, 0.02);
}

TEST(Des, WeakScalingIsNearlyFlat) {
  // Fig. 7: runtime vs walker count at fixed steps/walker is flat to a few
  // per cent.
  const auto results =
      weak_scaling(jaguar_xt5(), paper_job(10), {10, 50, 100, 144});
  const double t0 = results.front().makespan_s;
  for (const SimulationResult& r : results) {
    EXPECT_NEAR(r.makespan_s / t0, 1.0, 0.05) << "walkers=" << r.n_walkers;
  }
}

TEST(Des, StrongScalingApproachesIdealSpeedup) {
  const std::size_t total_steps = 2880;  // 144 * 20
  const auto results = strong_scaling(jaguar_xt5(), paper_job(10), total_steps,
                                      {10, 40, 144});
  // Serial fraction is tiny: speedup from 10 to 144 walkers ~ 14.4x on the
  // compute part; allow generous tolerance for the constant setup time.
  const double speedup =
      results.front().makespan_s / results.back().makespan_s;
  EXPECT_GT(speedup, 8.0);
  EXPECT_LE(speedup, 14.4 * 1.05);
}

TEST(Des, EnergyEvaluationTakesTensOfSeconds) {
  // One walker, one step: makespan ~ setup + T_e; checks the §II-C quote.
  JobDescription job = paper_job(1);
  job.steps_per_walker = 1;
  job.compute_jitter = 0.0;
  const MachineDescription machine = jaguar_xt5();
  const SimulationResult r = simulate_wl_lsms(machine, job);
  const double t_e = r.makespan_s - machine.setup_time_s;
  EXPECT_GT(t_e, 10.0);
  EXPECT_LT(t_e, 200.0);
}

TEST(Des, CoreHoursScaleWithMachineSize) {
  const MachineDescription machine = jaguar_xt5();
  const auto results = weak_scaling(machine, paper_job(10), {10, 144});
  // Same wall time, ~14x the cores -> ~14x the core-hours.
  EXPECT_NEAR(results[1].core_hours / results[0].core_hours, 14.3, 1.0);
  // Sanity: core-hours = makespan * cores / 3600.
  EXPECT_NEAR(results[0].core_hours,
              results[0].makespan_s * static_cast<double>(results[0].cores) /
                  3600.0,
              1e-9);
}

TEST(Des, SingleMasterSaturatesForFastEnergies) {
  // §V outlook: "for cases where the energy evaluation [is] very fast ...
  // limitations of Amdahl's law". With sub-millisecond energies the master
  // serializes; with 4 masters the wall lifts.
  MachineDescription machine = jaguar_xt5();
  machine.master_service_time_s = 50e-6;
  machine.setup_time_s = 0.1;  // setup must not mask the master wall
  JobDescription job = paper_job(512);
  job.n_atoms = 16;
  job.steps_per_walker = 50;
  job.energy_time_override_s = 1e-3;
  job.compute_jitter = 0.0;

  const SimulationResult single = simulate_wl_lsms(machine, job);
  EXPECT_GT(single.master_busy_fraction, 0.9);

  job.n_masters = 4;
  const SimulationResult multi = simulate_wl_lsms(machine, job);
  EXPECT_LT(multi.makespan_s, single.makespan_s);
  EXPECT_LT(multi.master_busy_fraction, single.master_busy_fraction);
}

TEST(Des, SlowEnergiesKeepMasterIdle) {
  // In the production regime the master is essentially idle (the paper's
  // premise for the single-master design).
  const SimulationResult r = simulate_wl_lsms(jaguar_xt5(), paper_job(144));
  EXPECT_LT(r.master_busy_fraction, 0.01);
}

TEST(Des, DeterministicForFixedSeed) {
  const SimulationResult a = simulate_wl_lsms(jaguar_xt5(), paper_job(50));
  const SimulationResult b = simulate_wl_lsms(jaguar_xt5(), paper_job(50));
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

TEST(Des, JitterChangesOnlySlightly) {
  JobDescription job = paper_job(50);
  const SimulationResult jittered = simulate_wl_lsms(jaguar_xt5(), job);
  job.compute_jitter = 0.0;
  const SimulationResult clean = simulate_wl_lsms(jaguar_xt5(), job);
  EXPECT_NEAR(jittered.makespan_s / clean.makespan_s, 1.0, 0.05);
  EXPECT_GE(jittered.makespan_s, clean.makespan_s * 0.99);
}

TEST(Des, InvalidJobThrows) {
  JobDescription job = paper_job(0);
  EXPECT_THROW(simulate_wl_lsms(jaguar_xt5(), job), ContractError);
  job = paper_job(1);
  job.steps_per_walker = 0;
  EXPECT_THROW(simulate_wl_lsms(jaguar_xt5(), job), ContractError);
}

}  // namespace
}  // namespace wlsms::cluster
