// Tests for the pivoted LU factorization, inverse, and log-determinant.
#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "perf/flops.hpp"

namespace wlsms::linalg {
namespace {

ZMatrix random_matrix(std::size_t n, Rng& rng) {
  ZMatrix m(n, n);
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t r = 0; r < n; ++r)
      m(r, c) = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  // Diagonal dominance keeps the condition number benign for the exactness
  // checks below.
  for (std::size_t d = 0; d < n; ++d) m(d, d) += Complex{4.0, 0.0};
  return m;
}

class LuSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuSizes, InverseTimesMatrixIsIdentity) {
  const std::size_t n = GetParam();
  Rng rng(n * 31 + 1);
  const ZMatrix a = random_matrix(n, rng);
  const ZMatrix inv = inverse(a);
  const ZMatrix prod = multiply(a, inv);
  EXPECT_LT(prod.max_abs_diff(ZMatrix::identity(n)),
            1e-11 * static_cast<double>(n));
}

TEST_P(LuSizes, SolveRecoversKnownSolution) {
  const std::size_t n = GetParam();
  Rng rng(n * 31 + 2);
  const ZMatrix a = random_matrix(n, rng);
  ZMatrix x_true(n, 2);
  for (std::size_t c = 0; c < 2; ++c)
    for (std::size_t r = 0; r < n; ++r)
      x_true(r, c) = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  const ZMatrix b = multiply(a, x_true);
  const ZMatrix x = LuFactorization(a).solve(b);
  EXPECT_LT(x.max_abs_diff(x_true), 1e-10 * static_cast<double>(n));
}

TEST_P(LuSizes, LogDetMatchesProductOfEigenvaluesForTriangular) {
  const std::size_t n = GetParam();
  Rng rng(n * 31 + 3);
  // Upper-triangular matrix: det = product of diagonal entries.
  ZMatrix t(n, n);
  Complex expected_log{0.0, 0.0};
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t r = 0; r < c; ++r)
      t(r, c) = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    const Complex d{rng.uniform(0.5, 2.0), rng.uniform(-0.4, 0.4)};
    t(c, c) = d;
    expected_log += Complex{std::log(std::abs(d)), std::arg(d)};
  }
  const Complex got = log_det(t);
  EXPECT_NEAR(got.real(), expected_log.real(), 1e-10);
  // The imaginary part is branch-dependent; compare modulo 2 pi.
  const double two_pi = 2.0 * std::acos(-1.0);
  double diff = std::fmod(got.imag() - expected_log.imag(), two_pi);
  if (diff > two_pi / 2) diff -= two_pi;
  if (diff < -two_pi / 2) diff += two_pi;
  EXPECT_NEAR(diff, 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 64, 130));

// ---------------------------------------------------------------------------
// Blocked vs unblocked factorization. The two algorithms make identical
// pivot choices (same column search order), so they must agree on pivots and
// parity exactly and on the factors to roundoff.

ZMatrix reconstruct_plu(const LuFactorization& f) {
  const std::size_t n = f.order();
  ZMatrix l = ZMatrix::identity(n);
  ZMatrix u(n, n);
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t r = 0; r < n; ++r) {
      if (r > c)
        l(r, c) = f.packed()(r, c);
      else
        u(r, c) = f.packed()(r, c);
    }
  ZMatrix lu = multiply(l, u);
  // Undo the row interchanges in reverse: P^T (L U) should equal A.
  for (std::size_t k = n; k-- > 0;) {
    const std::size_t p = f.pivots()[k];
    if (p == k) continue;
    for (std::size_t c = 0; c < n; ++c) std::swap(lu(k, c), lu(p, c));
  }
  return lu;
}

TEST(LuBlocked, MatchesUnblockedOnRandomMatrix) {
  const std::size_t n = 130;  // the paper-geometry zone order
  Rng rng(1301);
  const ZMatrix a = random_matrix(n, rng);
  const LuFactorization blocked(a, LuAlgorithm::kBlocked);
  const LuFactorization unblocked(a, LuAlgorithm::kUnblocked);
  EXPECT_EQ(blocked.pivots(), unblocked.pivots());
  EXPECT_LT(blocked.packed().max_abs_diff(unblocked.packed()), 1e-10);
  const Complex ld_b = blocked.log_det();
  const Complex ld_u = unblocked.log_det();
  EXPECT_NEAR(ld_b.real(), ld_u.real(), 1e-10);
  EXPECT_NEAR(ld_b.imag(), ld_u.imag(), 1e-10);
}

TEST(LuBlocked, ReconstructsMatrixThroughPlu) {
  for (const std::size_t n : {64ul, 97ul, 130ul}) {
    Rng rng(n);
    const ZMatrix a = random_matrix(n, rng);
    const LuFactorization f(a, LuAlgorithm::kBlocked);
    EXPECT_LT(reconstruct_plu(f).max_abs_diff(a), 1e-10 * static_cast<double>(n))
        << "n=" << n;
  }
}

TEST(LuBlocked, FactorizesPermutationMatrixExactly) {
  // Every pivot search must walk past zeros to the single 1 in the column;
  // a pure permutation stresses the row-interchange bookkeeping.
  const std::size_t n = 130;
  ZMatrix p(n, n);
  for (std::size_t c = 0; c < n; ++c) p((c + 37) % n, c) = {1.0, 0.0};
  const LuFactorization f(p, LuAlgorithm::kBlocked);
  EXPECT_LT(multiply(p, f.inverse()).max_abs_diff(ZMatrix::identity(n)),
            1e-13);
  EXPECT_NEAR(f.log_det().real(), 0.0, 1e-13);
}

TEST(LuBlocked, HandlesNearSingularMatrix) {
  // One row nearly linearly dependent on another: the factorization must
  // pivot through the tiny remaining entries and still solve accurately
  // (residual-wise) in both algorithms.
  const std::size_t n = 96;
  Rng rng(961);
  ZMatrix a = random_matrix(n, rng);
  for (std::size_t c = 0; c < n; ++c)
    a(1, c) = a(0, c) * Complex{2.0, 0.0} + a(1, c) * Complex{1e-10, 0.0};
  ZMatrix x_true(n, 1);
  for (std::size_t r = 0; r < n; ++r)
    x_true(r, 0) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const ZMatrix b = multiply(a, x_true);
  for (const LuAlgorithm alg :
       {LuAlgorithm::kBlocked, LuAlgorithm::kUnblocked}) {
    const ZMatrix x = LuFactorization(a, alg).solve(b);
    const ZMatrix residual = multiply(a, x);
    EXPECT_LT(residual.max_abs_diff(b), 1e-7)
        << "alg=" << static_cast<int>(alg);
  }
}

TEST(LuBlocked, SingularMatrixThrowsAtBlockedSize) {
  ZMatrix m(70, 70);  // all zeros, above the kAuto blocked threshold
  EXPECT_THROW(LuFactorization(m, LuAlgorithm::kBlocked), SingularMatrixError);
  std::vector<std::size_t> pivots;
  ZMatrix m2(70, 70);
  EXPECT_THROW(zgetrf_in_place(m2, pivots, LuAlgorithm::kBlocked),
               SingularMatrixError);
}

TEST(LuBlocked, AutoSelectsByOrder) {
  // kAuto must agree with whichever algorithm it picks; spot-check both
  // sides of the threshold by comparing against the explicit selections.
  Rng rng(77);
  const ZMatrix small = random_matrix(kLuBlockedThreshold - 1, rng);
  const ZMatrix large = random_matrix(kLuBlockedThreshold + 1, rng);
  EXPECT_EQ(zgetrf_flops(small.rows()),
            zgetrf_flops(small.rows(), LuAlgorithm::kUnblocked));
  EXPECT_EQ(zgetrf_flops(large.rows()),
            zgetrf_flops(large.rows(), LuAlgorithm::kBlocked));
}

TEST(LuBlocked, InstrumentedFlopsMatchAnalyticCount) {
  // The per-kernel counters booked by the panel/TRSM/GEMM pieces must sum
  // to exactly what zgetrf_flops predicts, for both algorithms.
  for (const LuAlgorithm alg :
       {LuAlgorithm::kBlocked, LuAlgorithm::kUnblocked}) {
    const std::size_t n = 130;
    Rng rng(n + static_cast<std::size_t>(alg));
    ZMatrix a = random_matrix(n, rng);
    std::vector<std::size_t> pivots;
    perf::FlopWindow window;
    zgetrf_in_place(a, pivots, alg);
    EXPECT_EQ(window.elapsed(), zgetrf_flops(n, alg))
        << "alg=" << static_cast<int>(alg);
  }
}

TEST(LuBlocked, GemmCarriesMostBlockedFlops) {
  // The point of the blocked factorization: at LIZ-sized orders the GEMM
  // trailing updates retire the bulk of the flops.
  const std::size_t n = 128;
  Rng rng(1281);
  ZMatrix a = random_matrix(n, rng);
  std::vector<std::size_t> pivots;
  perf::FlopWindow window;
  zgetrf_in_place(a, pivots, LuAlgorithm::kBlocked);
  EXPECT_GE(window.gemm_fraction(), 0.6);
}

TEST(Lu, SolveMultipleRhsInPlace) {
  Rng rng(93);
  const std::size_t n = 40;
  const ZMatrix a = random_matrix(n, rng);
  ZMatrix x_true(n, 3);
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t r = 0; r < n; ++r)
      x_true(r, c) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  ZMatrix b = multiply(a, x_true);
  std::vector<std::size_t> pivots;
  ZMatrix lu = a;
  zgetrf_in_place(lu, pivots);
  zgetrs_in_place(lu, pivots, b.data(), 3, n);
  EXPECT_LT(b.max_abs_diff(x_true), 1e-10);
}

TEST(Lu, DetOfKnownTwoByTwo) {
  ZMatrix m(2, 2);
  m(0, 0) = {1, 0};
  m(0, 1) = {2, 0};
  m(1, 0) = {3, 0};
  m(1, 1) = {4, 0};
  const Complex d = LuFactorization(m).det();
  EXPECT_NEAR(d.real(), -2.0, 1e-13);
  EXPECT_NEAR(d.imag(), 0.0, 1e-13);
}

TEST(Lu, DetTracksRowSwapSign) {
  // Permutation matrix with one swap: det = -1.
  ZMatrix p(2, 2);
  p(0, 1) = {1, 0};
  p(1, 0) = {1, 0};
  const Complex d = LuFactorization(p).det();
  EXPECT_NEAR(d.real(), -1.0, 1e-14);
}

TEST(Lu, LogDetOfIdentityIsZero) {
  const Complex ld = log_det(ZMatrix::identity(7));
  EXPECT_NEAR(ld.real(), 0.0, 1e-14);
  EXPECT_NEAR(ld.imag(), 0.0, 1e-14);
}

TEST(Lu, LogDetRealPartIsScaleCovariant) {
  // log|det(s A)| = n log s + log|det A| for real s > 0.
  Rng rng(91);
  const std::size_t n = 6;
  ZMatrix a = random_matrix(n, rng);
  const double base = log_det(a).real();
  ZMatrix scaled = a;
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t r = 0; r < n; ++r) scaled(r, c) *= 2.0;
  EXPECT_NEAR(log_det(scaled).real(),
              base + static_cast<double>(n) * std::log(2.0), 1e-10);
}

TEST(Lu, SingularMatrixThrows) {
  ZMatrix m(3, 3);  // all zeros
  EXPECT_THROW(LuFactorization{m}, SingularMatrixError);
}

TEST(Lu, RankDeficientThrows) {
  ZMatrix m(2, 2);
  m(0, 0) = {1, 0};
  m(0, 1) = {2, 0};
  m(1, 0) = {2, 0};
  m(1, 1) = {4, 0};  // second row = 2 * first
  EXPECT_THROW(LuFactorization{m}, SingularMatrixError);
}

TEST(Lu, NonSquareThrows) {
  const ZMatrix m(2, 3);
  EXPECT_THROW(LuFactorization{m}, ContractError);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  ZMatrix m(2, 2);
  m(0, 0) = {0, 0};
  m(0, 1) = {1, 0};
  m(1, 0) = {1, 0};
  m(1, 1) = {0, 0};
  const ZMatrix inv = LuFactorization(m).inverse();
  EXPECT_LT(multiply(m, inv).max_abs_diff(ZMatrix::identity(2)), 1e-13);
}

TEST(Lu, SolveInPlaceSingleRhs) {
  Rng rng(92);
  const ZMatrix a = random_matrix(5, rng);
  std::vector<Complex> x_true(5);
  for (Complex& v : x_true) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  std::vector<Complex> b(5, Complex{0, 0});
  for (std::size_t j = 0; j < 5; ++j)
    for (std::size_t i = 0; i < 5; ++i) b[i] += a(i, j) * x_true[j];
  LuFactorization(a).solve_in_place(b.data());
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_NEAR(std::abs(b[i] - x_true[i]), 0.0, 1e-11);
}

}  // namespace
}  // namespace wlsms::linalg
