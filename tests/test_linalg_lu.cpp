// Tests for the pivoted LU factorization, inverse, and log-determinant.
#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/blas.hpp"

namespace wlsms::linalg {
namespace {

ZMatrix random_matrix(std::size_t n, Rng& rng) {
  ZMatrix m(n, n);
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t r = 0; r < n; ++r)
      m(r, c) = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  // Diagonal dominance keeps the condition number benign for the exactness
  // checks below.
  for (std::size_t d = 0; d < n; ++d) m(d, d) += Complex{4.0, 0.0};
  return m;
}

class LuSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuSizes, InverseTimesMatrixIsIdentity) {
  const std::size_t n = GetParam();
  Rng rng(n * 31 + 1);
  const ZMatrix a = random_matrix(n, rng);
  const ZMatrix inv = inverse(a);
  const ZMatrix prod = multiply(a, inv);
  EXPECT_LT(prod.max_abs_diff(ZMatrix::identity(n)),
            1e-11 * static_cast<double>(n));
}

TEST_P(LuSizes, SolveRecoversKnownSolution) {
  const std::size_t n = GetParam();
  Rng rng(n * 31 + 2);
  const ZMatrix a = random_matrix(n, rng);
  ZMatrix x_true(n, 2);
  for (std::size_t c = 0; c < 2; ++c)
    for (std::size_t r = 0; r < n; ++r)
      x_true(r, c) = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  const ZMatrix b = multiply(a, x_true);
  const ZMatrix x = LuFactorization(a).solve(b);
  EXPECT_LT(x.max_abs_diff(x_true), 1e-10 * static_cast<double>(n));
}

TEST_P(LuSizes, LogDetMatchesProductOfEigenvaluesForTriangular) {
  const std::size_t n = GetParam();
  Rng rng(n * 31 + 3);
  // Upper-triangular matrix: det = product of diagonal entries.
  ZMatrix t(n, n);
  Complex expected_log{0.0, 0.0};
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t r = 0; r < c; ++r)
      t(r, c) = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    const Complex d{rng.uniform(0.5, 2.0), rng.uniform(-0.4, 0.4)};
    t(c, c) = d;
    expected_log += Complex{std::log(std::abs(d)), std::arg(d)};
  }
  const Complex got = log_det(t);
  EXPECT_NEAR(got.real(), expected_log.real(), 1e-10);
  // The imaginary part is branch-dependent; compare modulo 2 pi.
  const double two_pi = 2.0 * std::acos(-1.0);
  double diff = std::fmod(got.imag() - expected_log.imag(), two_pi);
  if (diff > two_pi / 2) diff -= two_pi;
  if (diff < -two_pi / 2) diff += two_pi;
  EXPECT_NEAR(diff, 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 64, 130));

TEST(Lu, DetOfKnownTwoByTwo) {
  ZMatrix m(2, 2);
  m(0, 0) = {1, 0};
  m(0, 1) = {2, 0};
  m(1, 0) = {3, 0};
  m(1, 1) = {4, 0};
  const Complex d = LuFactorization(m).det();
  EXPECT_NEAR(d.real(), -2.0, 1e-13);
  EXPECT_NEAR(d.imag(), 0.0, 1e-13);
}

TEST(Lu, DetTracksRowSwapSign) {
  // Permutation matrix with one swap: det = -1.
  ZMatrix p(2, 2);
  p(0, 1) = {1, 0};
  p(1, 0) = {1, 0};
  const Complex d = LuFactorization(p).det();
  EXPECT_NEAR(d.real(), -1.0, 1e-14);
}

TEST(Lu, LogDetOfIdentityIsZero) {
  const Complex ld = log_det(ZMatrix::identity(7));
  EXPECT_NEAR(ld.real(), 0.0, 1e-14);
  EXPECT_NEAR(ld.imag(), 0.0, 1e-14);
}

TEST(Lu, LogDetRealPartIsScaleCovariant) {
  // log|det(s A)| = n log s + log|det A| for real s > 0.
  Rng rng(91);
  const std::size_t n = 6;
  ZMatrix a = random_matrix(n, rng);
  const double base = log_det(a).real();
  ZMatrix scaled = a;
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t r = 0; r < n; ++r) scaled(r, c) *= 2.0;
  EXPECT_NEAR(log_det(scaled).real(),
              base + static_cast<double>(n) * std::log(2.0), 1e-10);
}

TEST(Lu, SingularMatrixThrows) {
  ZMatrix m(3, 3);  // all zeros
  EXPECT_THROW(LuFactorization{m}, SingularMatrixError);
}

TEST(Lu, RankDeficientThrows) {
  ZMatrix m(2, 2);
  m(0, 0) = {1, 0};
  m(0, 1) = {2, 0};
  m(1, 0) = {2, 0};
  m(1, 1) = {4, 0};  // second row = 2 * first
  EXPECT_THROW(LuFactorization{m}, SingularMatrixError);
}

TEST(Lu, NonSquareThrows) {
  const ZMatrix m(2, 3);
  EXPECT_THROW(LuFactorization{m}, ContractError);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  ZMatrix m(2, 2);
  m(0, 0) = {0, 0};
  m(0, 1) = {1, 0};
  m(1, 0) = {1, 0};
  m(1, 1) = {0, 0};
  const ZMatrix inv = LuFactorization(m).inverse();
  EXPECT_LT(multiply(m, inv).max_abs_diff(ZMatrix::identity(2)), 1e-13);
}

TEST(Lu, SolveInPlaceSingleRhs) {
  Rng rng(92);
  const ZMatrix a = random_matrix(5, rng);
  std::vector<Complex> x_true(5);
  for (Complex& v : x_true) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  std::vector<Complex> b(5, Complex{0, 0});
  for (std::size_t j = 0; j < 5; ++j)
    for (std::size_t i = 0; i < 5; ++i) b[i] += a(i, j) * x_true[j];
  LuFactorization(a).solve_in_place(b.data());
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_NEAR(std::abs(b[i] - x_true[i]), 0.0, 1e-11);
}

}  // namespace
}  // namespace wlsms::linalg
