// Concurrency soak tests for the parallel layer. These are the primary
// targets of the `tsan` and `asan-ubsan` CMake presets (`ctest -L sanitize`):
// they push enough work through the ThreadPool / AsyncEnergyService /
// FailureInjectingService stack that data races, lock-order problems and
// lost wakeups have a realistic chance of being exercised, and they assert
// the protocol invariant that matters to the Wang-Landau driver — every
// submitted ticket is retrieved exactly once.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "heisenberg/heisenberg.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"
#include "parallel/async_service.hpp"
#include "parallel/failure.hpp"
#include "parallel/thread_pool.hpp"

namespace wlsms::parallel {
namespace {

wl::HeisenbergEnergy fe16_energy() {
  std::vector<double> j = lsms::fe_reference_exchange();
  for (double& v : j) v *= lsms::fe_exchange_energy_scale;
  return wl::HeisenbergEnergy(
      heisenberg::HeisenbergModel(lattice::make_fe_supercell(2), j));
}

TEST(ParallelStress, ThreadPoolSoakFromConcurrentPosters) {
  // 4 posting threads x 2500 tasks against a 4-worker pool; every task must
  // run exactly once even while post() races with the worker loop.
  constexpr int kPosters = 4;
  constexpr int kTasksPerPoster = 2500;
  std::atomic<int> executed{0};
  {
    ThreadPool pool(4);
    std::vector<std::thread> posters;
    posters.reserve(kPosters);
    for (int p = 0; p < kPosters; ++p)
      posters.emplace_back([&pool, &executed] {
        for (int k = 0; k < kTasksPerPoster; ++k)
          pool.post([&executed] { executed.fetch_add(1); });
      });
    for (std::thread& poster : posters) poster.join();
    // ~ThreadPool drains the queue before joining the workers.
  }
  EXPECT_EQ(executed.load(), kPosters * kTasksPerPoster);
}

TEST(ParallelStress, AsyncServiceConcurrentRetrievers) {
  // All requests are posted first, then 4 threads drain the completion
  // queue concurrently. Tickets must partition exactly: no result lost, no
  // result delivered twice.
  const wl::HeisenbergEnergy energy = fe16_energy();
  AsyncEnergyService service(energy, 4);
  Rng rng(21);
  constexpr std::uint64_t kRequests = 2000;
  constexpr int kRetrievers = 4;
  for (std::uint64_t t = 0; t < kRequests; ++t)
    service.submit({t % 8, t, spin::MomentConfiguration::random(16, rng)});

  std::vector<std::vector<std::uint64_t>> tickets(kRetrievers);
  std::vector<std::thread> retrievers;
  retrievers.reserve(kRetrievers);
  for (int r = 0; r < kRetrievers; ++r)
    retrievers.emplace_back([&service, &tickets, r] {
      for (std::uint64_t k = 0; k < kRequests / kRetrievers; ++k) {
        const wl::EnergyResult result = service.retrieve();
        EXPECT_FALSE(result.failed);
        tickets[static_cast<std::size_t>(r)].push_back(result.ticket);
      }
    });
  for (std::thread& retriever : retrievers) retriever.join();

  std::set<std::uint64_t> seen;
  for (const auto& slice : tickets)
    for (std::uint64_t ticket : slice) EXPECT_TRUE(seen.insert(ticket).second);
  EXPECT_EQ(seen.size(), kRequests);
  EXPECT_EQ(service.outstanding(), 0u);
}

TEST(ParallelStress, FailureSoakDeliversEveryLogicalRequestExactlyOnce) {
  // ~10^4 logical energy requests through the failure decorator (20 % loss)
  // over the real thread-pool service, resubmitting every failure under a
  // fresh ticket — the same discipline WlDriver uses. Each logical request
  // must produce exactly one *successful* result; at the end nothing may
  // remain outstanding.
  const wl::HeisenbergEnergy energy = fe16_energy();
  AsyncEnergyService inner(energy, 4);
  FailureInjectingService service(inner, 0.2, Rng(31));
  Rng rng(32);

  constexpr std::uint64_t kLogical = 10000;
  constexpr std::size_t kWindow = 256;  // in-flight cap

  std::vector<spin::MomentConfiguration> configs;
  configs.reserve(kLogical);
  for (std::uint64_t id = 0; id < kLogical; ++id)
    configs.push_back(spin::MomentConfiguration::random(16, rng));

  std::map<std::uint64_t, std::uint64_t> ticket_to_logical;
  std::vector<int> successes(kLogical, 0);
  std::uint64_t next_ticket = 0;
  std::uint64_t next_logical = 0;
  std::uint64_t resubmissions = 0;

  const auto submit_logical = [&](std::uint64_t id) {
    ticket_to_logical[next_ticket] = id;
    service.submit({static_cast<std::size_t>(id % 8), next_ticket,
                    configs[id]});
    ++next_ticket;
  };

  while (next_logical < kLogical && service.outstanding() < kWindow)
    submit_logical(next_logical++);

  while (service.outstanding() > 0) {
    const wl::EnergyResult result = service.retrieve();
    const auto entry = ticket_to_logical.find(result.ticket);
    ASSERT_NE(entry, ticket_to_logical.end());
    const std::uint64_t id = entry->second;
    ticket_to_logical.erase(entry);
    if (result.failed) {
      ++resubmissions;
      submit_logical(id);  // lost instance: resubmit the same configuration
    } else {
      ++successes[id];
    }
    if (next_logical < kLogical) submit_logical(next_logical++);
  }

  for (std::uint64_t id = 0; id < kLogical; ++id)
    ASSERT_EQ(successes[id], 1) << "logical request " << id;
  EXPECT_EQ(service.outstanding(), 0u);
  EXPECT_EQ(service.injected_failures(), resubmissions);
  // With p = 0.2 the resubmission rate should be near 25 % of the logical
  // count (geometric retries: p / (1 - p)).
  EXPECT_NEAR(static_cast<double>(resubmissions) / kLogical, 0.25, 0.05);
}

}  // namespace
}  // namespace wlsms::parallel
