// Integration tests of the sequential Wang-Landau sampler on the iron
// surrogate, cross-validated against Metropolis importance sampling.
#include "wl/wanglandau.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "common/units.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"
#include "mc/metropolis.hpp"
#include "thermo/observables.hpp"

namespace wlsms::wl {
namespace {

HeisenbergEnergy fe16_energy() {
  std::vector<double> j = lsms::fe_reference_exchange();
  for (double& v : j) v *= lsms::fe_exchange_energy_scale;
  return HeisenbergEnergy(
      heisenberg::HeisenbergModel(lattice::make_fe_supercell(2), j));
}

WangLandauConfig fe16_config(const HeisenbergEnergy& energy, Rng& rng) {
  WangLandauConfig config;
  config.grid = thermal_window(
      energy, energy.model().ferromagnetic_energy(), 150.0, rng);
  config.n_walkers = 8;
  config.check_interval = 5000;
  config.flatness = 0.8;
  config.max_iteration_steps = 2000000;
  config.max_steps = 200000000;
  return config;
}

class ConvergedFe16 : public ::testing::Test {
 protected:
  struct State {
    HeisenbergEnergy energy;
    WangLandauStats stats;
    thermo::DosTable table;
  };
  static const State& state() {
    static const State cached = [] {
      HeisenbergEnergy energy = fe16_energy();
      Rng window_rng(5);
      const WangLandauConfig config = fe16_config(energy, window_rng);
      WangLandau sampler(energy, config,
                         std::make_unique<HalvingSchedule>(1.0, 1e-6),
                         Rng(123));
      sampler.run();
      return State{std::move(energy), sampler.stats(),
                   thermo::dos_table(sampler.dos())};
    }();
    return cached;
  }
};

TEST_F(ConvergedFe16, RunConvergesWithinBudget) {
  EXPECT_EQ(state().stats.iterations, 20u);  // 2^-20 <= 1e-6
  EXPECT_LT(state().stats.total_steps, 100000000u);
  EXPECT_GT(state().stats.accepted_steps, 0u);
}

TEST_F(ConvergedFe16, MostIterationsEndByGenuineFlatness) {
  EXPECT_LT(state().stats.forced_iterations, state().stats.iterations / 2);
}

TEST_F(ConvergedFe16, InternalEnergyMatchesMetropolis) {
  // Independent Metropolis chains at three temperatures (the conventional
  // method of §II-A) must agree with the single WL density of states.
  Rng rng(99);
  for (double t : {400.0, 900.0, 1600.0}) {
    mc::MetropolisConfig config;
    config.temperature_k = t;
    config.thermalization_steps = 200000;
    config.measurement_steps = 600000;
    config.measure_interval = 16;
    const mc::MetropolisResult reference = mc::metropolis_run(
        state().energy, spin::MomentConfiguration::random(16, rng), config,
        rng);
    const double u_wl =
        thermo::observables_at(state().table, t).internal_energy;
    EXPECT_NEAR(u_wl, reference.mean_energy,
                0.04 * std::abs(reference.mean_energy))
        << "T=" << t;
  }
}

TEST_F(ConvergedFe16, CuriePeakInPhysicalRange) {
  const auto tc = thermo::estimate_curie_temperature(state().table, 250, 3000);
  EXPECT_GT(tc.tc, 600.0);
  EXPECT_LT(tc.tc, 1300.0);
  EXPECT_GT(tc.peak_height, 0.0);
}

TEST_F(ConvergedFe16, DosIsSmoothDome) {
  // ln g rises from the low-energy edge to a maximum near the window top.
  const thermo::DosTable& table = state().table;
  ASSERT_GT(table.energy.size(), 100u);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < table.ln_g.size(); ++i)
    if (table.ln_g[i] > table.ln_g[argmax]) argmax = i;
  EXPECT_GT(argmax, table.ln_g.size() / 2);
  // Monotone rise (allowing small statistical wiggles) below the maximum.
  int violations = 0;
  for (std::size_t i = 5; i < argmax; ++i)
    if (table.ln_g[i] < table.ln_g[i - 5] - 1.5) ++violations;
  EXPECT_LT(violations, static_cast<int>(argmax) / 20 + 1);
}

TEST(WangLandau, WalkerCountPreservesPhysics) {
  // 1 walker and 8 walkers sharing the DOS estimate converge to compatible
  // answers (the paper's walker parallelization is physics-neutral).
  HeisenbergEnergy energy = fe16_energy();
  Rng window_rng(5);
  WangLandauConfig config = fe16_config(energy, window_rng);
  config.max_steps = 60000000;

  std::vector<double> u_values;
  for (std::size_t walkers : {1u, 8u}) {
    config.n_walkers = walkers;
    WangLandau sampler(energy, config,
                       std::make_unique<HalvingSchedule>(1.0, 1e-5),
                       Rng(77 + walkers));
    sampler.run();
    const thermo::DosTable table = thermo::dos_table(sampler.dos());
    u_values.push_back(thermo::observables_at(table, 900.0).internal_energy);
  }
  EXPECT_NEAR(u_values[0], u_values[1], 0.05 * std::abs(u_values[0]));
}

TEST(WangLandau, MaxStepsCapsTheRun) {
  HeisenbergEnergy energy = fe16_energy();
  Rng window_rng(5);
  WangLandauConfig config = fe16_config(energy, window_rng);
  config.max_steps = 50000;
  WangLandau sampler(energy, config,
                     std::make_unique<HalvingSchedule>(1.0, 1e-8), Rng(1));
  sampler.run();
  EXPECT_FALSE(sampler.converged());
  EXPECT_LE(sampler.stats().total_steps, 50000u + config.n_walkers);
}

TEST(WangLandau, OutOfRangeProposalsAreCountedAndRejected) {
  HeisenbergEnergy energy = fe16_energy();
  // A deliberately narrow window around the random-configuration band.
  WangLandauConfig config;
  config.grid = {-0.35, -0.1, 100, 0.005};
  config.n_walkers = 2;
  config.max_steps = 100000;
  Rng rng(42);
  // Find a seed whose random initial configurations land inside the window:
  // energies of random configs concentrate near -0.08..0; widen instead.
  config.grid = {-0.30, 0.10, 100, 0.005};
  WangLandau sampler(energy, config,
                     std::make_unique<HalvingSchedule>(1.0, 1e-8), rng);
  sampler.run();
  EXPECT_GT(sampler.stats().out_of_range, 0u);
  // Walker energies remain inside the window throughout.
  for (std::size_t w = 0; w < sampler.n_walkers(); ++w)
    EXPECT_TRUE(sampler.dos().contains(sampler.walker_energy(w)));
}

TEST(WangLandau, SetWalkerSeedsConfiguration) {
  HeisenbergEnergy energy = fe16_energy();
  Rng window_rng(5);
  const WangLandauConfig config = fe16_config(energy, window_rng);
  WangLandau sampler(energy, config,
                     std::make_unique<HalvingSchedule>(1.0, 1e-6), Rng(3));
  Rng rng(4);
  const auto config16 = spin::MomentConfiguration::random(16, rng);
  sampler.set_walker(0, config16);
  EXPECT_NEAR(sampler.walker_energy(0), energy.total_energy(config16), 1e-12);
}

TEST(WangLandau, ThermalWindowBracketsThermalEnergies) {
  HeisenbergEnergy energy = fe16_energy();
  Rng rng(5);
  const DosGridConfig grid = thermal_window(
      energy, energy.model().ferromagnetic_energy(), 150.0, rng);
  const double e_fm = energy.model().ferromagnetic_energy();
  EXPECT_GT(grid.e_min, e_fm);
  EXPECT_LT(grid.e_min, 0.9 * e_fm);
  EXPECT_GT(grid.e_max, 0.0);  // above the infinite-T mean
}

TEST(WangLandau, InitialConfigurationOutsideWindowThrows) {
  HeisenbergEnergy energy = fe16_energy();
  WangLandauConfig config;
  config.grid = {5.0, 6.0, 50, 0.005};  // unreachable energies
  EXPECT_THROW(WangLandau(energy, config,
                          std::make_unique<HalvingSchedule>(1.0, 1e-6),
                          Rng(1)),
               ContractError);
}

}  // namespace
}  // namespace wlsms::wl
