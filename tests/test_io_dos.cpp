// Tests for density-of-states persistence.
#include "io/dos_io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>

namespace wlsms::io {
namespace {

thermo::DosTable sample_table() {
  thermo::DosTable table;
  for (int i = 0; i < 50; ++i) {
    table.energy.push_back(-1.0 + 0.04 * i);
    table.ln_g.push_back(100.0 * std::sin(0.3 * i) + 500.0);
  }
  return table;
}

TEST(DosIo, StreamRoundTripIsExact) {
  const thermo::DosTable original = sample_table();
  std::stringstream stream;
  write_dos(stream, original);
  const thermo::DosTable loaded = read_dos(stream);
  ASSERT_EQ(loaded.energy.size(), original.energy.size());
  for (std::size_t i = 0; i < loaded.energy.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.energy[i], original.energy[i]);
    EXPECT_DOUBLE_EQ(loaded.ln_g[i], original.ln_g[i]);
  }
}

TEST(DosIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "wlsms_dos_test.csv";
  const thermo::DosTable original = sample_table();
  save_dos(path, original);
  const thermo::DosTable loaded = load_dos(path);
  EXPECT_EQ(loaded.energy, original.energy);
  std::remove(path.c_str());
}

TEST(DosIo, ThermodynamicsSurviveRoundTrip) {
  const thermo::DosTable original = sample_table();
  std::stringstream stream;
  write_dos(stream, original);
  const thermo::DosTable loaded = read_dos(stream);
  const auto a = thermo::observables_at(original, 800.0);
  const auto b = thermo::observables_at(loaded, 800.0);
  EXPECT_DOUBLE_EQ(a.internal_energy, b.internal_energy);
  EXPECT_DOUBLE_EQ(a.specific_heat, b.specific_heat);
}

TEST(DosIo, CompatibleWithBenchCsvHeader) {
  // The bench harness writes "energy_ry,ln_g" via CsvWriter; read_dos must
  // accept exactly that format.
  std::stringstream stream("energy_ry,ln_g\n-1.0,0.5\n0.0,2.5\n");
  const thermo::DosTable table = read_dos(stream);
  ASSERT_EQ(table.energy.size(), 2u);
  EXPECT_DOUBLE_EQ(table.energy[1], 0.0);
  EXPECT_DOUBLE_EQ(table.ln_g[0], 0.5);
}

TEST(DosIo, BadHeaderRejected) {
  std::stringstream stream("e,g\n1,2\n");
  EXPECT_THROW(read_dos(stream), DosIoError);
}

TEST(DosIo, NonNumericFieldRejected) {
  std::stringstream stream("energy_ry,ln_g\n-1.0,abc\n");
  EXPECT_THROW(read_dos(stream), DosIoError);
}

TEST(DosIo, MissingCommaRejected) {
  std::stringstream stream("energy_ry,ln_g\n-1.0 0.5\n");
  EXPECT_THROW(read_dos(stream), DosIoError);
}

TEST(DosIo, UnsortedEnergiesRejected) {
  std::stringstream stream("energy_ry,ln_g\n0.0,1.0\n-1.0,2.0\n");
  EXPECT_THROW(read_dos(stream), DosIoError);
}

TEST(DosIo, EmptyBodyRejected) {
  std::stringstream stream("energy_ry,ln_g\n");
  EXPECT_THROW(read_dos(stream), DosIoError);
}

TEST(DosIo, MissingFileRejected) {
  EXPECT_THROW(load_dos("/nonexistent/dir/dos.csv"), DosIoError);
}

TEST(DosIo, BlankLinesSkipped) {
  std::stringstream stream("energy_ry,ln_g\n-1.0,0.5\n\n0.0,2.5\n\n");
  const thermo::DosTable table = read_dos(stream);
  EXPECT_EQ(table.energy.size(), 2u);
}

}  // namespace
}  // namespace wlsms::io
