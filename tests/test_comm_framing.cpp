// Framing-layer tests: the shared byte-stream substrate under both the
// socketpair and TCP transports. Property tests for the frame codec
// (arbitrary chunking must reassemble to the original frame sequence),
// plus regressions for the three hardening bugs this layer exists to fix:
//  - a payload that cannot fit the u32 length field must throw on the send
//    side (historically it wrapped and desynced the stream);
//  - a corrupt length field must throw from the assembler (the receiver
//    kills the rank), never allocate absurd buffers or desync silently;
//  - write_all must honor its deadline when the peer's socket buffer stays
//    full (historically it looped forever and wedged the controller).
#include "comm/framing.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace wlsms::comm {
namespace {

using namespace std::chrono_literals;

Message text_message(std::uint32_t tag, const std::string& text) {
  Message message;
  message.tag = tag;
  message.payload.resize(text.size());
  if (!text.empty())
    std::memcpy(message.payload.data(), text.data(), text.size());
  return message;
}

TEST(FrameCodec, WireLayoutIsLengthTagPayload) {
  const std::vector<std::byte> frame = frame_bytes(text_message(0x11223344u,
                                                                "abc"));
  ASSERT_EQ(frame.size(), 8u + 3u);
  // length = 4 (tag) + 3 (payload), little-endian
  EXPECT_EQ(std::to_integer<unsigned>(frame[0]), 7u);
  EXPECT_EQ(std::to_integer<unsigned>(frame[1]), 0u);
  EXPECT_EQ(std::to_integer<unsigned>(frame[2]), 0u);
  EXPECT_EQ(std::to_integer<unsigned>(frame[3]), 0u);
  EXPECT_EQ(std::to_integer<unsigned>(frame[4]), 0x44u);
  EXPECT_EQ(std::to_integer<unsigned>(frame[5]), 0x33u);
  EXPECT_EQ(std::to_integer<unsigned>(frame[6]), 0x22u);
  EXPECT_EQ(std::to_integer<unsigned>(frame[7]), 0x11u);
  EXPECT_EQ(std::to_integer<unsigned>(frame[8]), 'a');
}

TEST(FrameCodec, AppendFrameConcatenatesInOrder) {
  std::vector<std::byte> batch;
  append_frame(batch, text_message(1, "first"));
  const std::size_t first_end = batch.size();
  append_frame(batch, text_message(2, ""));
  append_frame(batch, text_message(3, "third"));
  EXPECT_EQ(first_end, 8u + 5u);
  EXPECT_EQ(batch.size(), (8u + 5u) + 8u + (8u + 5u));

  FrameAssembler assembler;
  assembler.push(batch.data(), batch.size());
  Message out;
  ASSERT_TRUE(assembler.pop(out));
  EXPECT_EQ(out.tag, 1u);
  ASSERT_TRUE(assembler.pop(out));
  EXPECT_EQ(out.tag, 2u);
  EXPECT_TRUE(out.payload.empty());
  ASSERT_TRUE(assembler.pop(out));
  EXPECT_EQ(out.tag, 3u);
  EXPECT_FALSE(assembler.pop(out));
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(FrameCodec, OversizedPayloadThrowsInsteadOfTruncating) {
  // Regression: the length used to be computed as 4 + size in u32, so a
  // payload within 4 bytes of 2^32 wrapped to a tiny length and desynced
  // the stream. The bound is a parameter so the test exercises the exact
  // arithmetic without allocating gigabytes.
  constexpr std::uint32_t kTinyMax = 64;
  Message fits;
  fits.tag = 1;
  fits.payload.resize(kTinyMax - 4);  // length == max: allowed
  std::vector<std::byte> out;
  EXPECT_NO_THROW(append_frame(out, fits, kTinyMax));

  Message too_big;
  too_big.tag = 1;
  too_big.payload.resize(kTinyMax - 3);  // length == max + 1: rejected
  EXPECT_THROW(append_frame(out, too_big, kTinyMax), CommError);
  EXPECT_THROW((void)frame_bytes(too_big, kTinyMax), CommError);

  // The u32-wrap shape itself: a payload size that makes 4 + size wrap to a
  // small number in 32-bit arithmetic must still throw. Simulated via the
  // parameterized bound (4 + (2^32 - 2) wraps to 2 in u32); the production
  // path computes in 64 bits, so this must be rejected, not "length 2".
  Message wrap;
  wrap.tag = 1;
  // Cannot allocate 2^32-2 bytes here; instead verify the arithmetic is
  // 64-bit by checking a payload just over a max near the u32 ceiling.
  wrap.payload.resize(1000);
  EXPECT_THROW(append_frame(out, wrap, 900), CommError);
}

TEST(FrameAssembler, ReassemblesUnderArbitraryChunking) {
  // Property test: any chunking of a frame sequence yields the same frames.
  Rng rng(1234);
  std::vector<Message> sent;
  std::vector<std::byte> stream;
  for (std::uint32_t k = 0; k < 64; ++k) {
    std::string payload(rng.uniform_index(512), '\0');
    for (char& c : payload)
      c = static_cast<char>('a' + rng.uniform_index(26));
    sent.push_back(text_message(k, payload));
    append_frame(stream, sent.back());
  }

  for (int trial = 0; trial < 8; ++trial) {
    FrameAssembler assembler;
    std::vector<Message> got;
    std::size_t at = 0;
    while (at < stream.size()) {
      // Chunk sizes from 1 byte (worst case: headers split mid-u32) to 4 KiB.
      const std::size_t n =
          std::min(stream.size() - at, 1 + rng.uniform_index(4096));
      assembler.push(stream.data() + at, n);
      at += n;
      Message out;
      while (assembler.pop(out)) got.push_back(out);
    }
    ASSERT_EQ(got.size(), sent.size()) << "trial " << trial;
    for (std::size_t k = 0; k < sent.size(); ++k) {
      EXPECT_EQ(got[k].tag, sent[k].tag);
      EXPECT_EQ(got[k].payload, sent[k].payload);
    }
    EXPECT_EQ(assembler.buffered(), 0u);
  }
}

TEST(FrameAssembler, CorruptLengthThrowsCommError) {
  // length < 4 cannot even cover the tag.
  FrameAssembler small;
  const std::uint8_t tiny[8] = {3, 0, 0, 0, 1, 0, 0, 0};
  small.push(tiny, sizeof(tiny));
  Message out;
  EXPECT_THROW(small.pop(out), CommError);

  // length > kMaxFrameBytes is a desynced or hostile stream, not a frame to
  // allocate.
  FrameAssembler huge;
  const std::uint8_t giant[8] = {0xFF, 0xFF, 0xFF, 0xFF, 1, 0, 0, 0};
  huge.push(giant, sizeof(giant));
  EXPECT_THROW(huge.pop(out), CommError);

  // reset() recovers the assembler object itself.
  huge.reset();
  EXPECT_EQ(huge.buffered(), 0u);
  std::vector<std::byte> good;
  append_frame(good, text_message(9, "ok"));
  huge.push(good.data(), good.size());
  ASSERT_TRUE(huge.pop(out));
  EXPECT_EQ(out.tag, 9u);
}

TEST(WriteAll, DeadlineExpiresOnAFullSocketBuffer) {
  // Regression: write_all used to poll forever, so a peer that stopped
  // reading (SIGSTOPped child, wedged remote) pinned the controller inside
  // send(). Fill a socketpair until EAGAIN, then require a bounded failure.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Non-blocking writer side so the fill loop can detect "full".
  ASSERT_EQ(::fcntl(fds[0], F_SETFL, O_NONBLOCK), 0);

  const std::vector<char> chunk(64 * 1024, 'x');
  while (true) {
    const ssize_t wrote = ::send(fds[0], chunk.data(), chunk.size(),
                                 MSG_NOSIGNAL);
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    ASSERT_FALSE(wrote < 0) << "unexpected errno " << errno;
  }

  const auto start = StreamClock::now();
  EXPECT_FALSE(
      write_all(fds[0], chunk.data(), chunk.size(), start + 200ms));
  const auto elapsed = StreamClock::now() - start;
  EXPECT_GE(elapsed, 150ms);  // actually waited for the deadline...
  EXPECT_LT(elapsed, 3s);     // ...but came back promptly after it

  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WriteAll, PeerCloseFailsFast) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);
  const char byte = 'x';
  // EPIPE must be a clean false (MSG_NOSIGNAL), not a SIGPIPE crash, and
  // must not wait out the deadline.
  const auto start = StreamClock::now();
  EXPECT_FALSE(write_all(fds[0], &byte, 1, start + 10s));
  EXPECT_LT(StreamClock::now() - start, 5s);
  ::close(fds[0]);
}

}  // namespace
}  // namespace wlsms::comm
