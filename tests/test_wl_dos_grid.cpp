// Tests for the DOS grid: binning, kernel updates, flatness bookkeeping.
#include "wl/dos_grid.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace wlsms::wl {
namespace {

DosGridConfig small_grid() {
  DosGridConfig config;
  config.e_min = 0.0;
  config.e_max = 1.0;
  config.bins = 100;
  config.kernel_width_fraction = 0.005;  // half a bin
  return config;
}

TEST(DosGrid, BinGeometry) {
  const DosGrid dos(small_grid());
  EXPECT_EQ(dos.bins(), 100u);
  EXPECT_DOUBLE_EQ(dos.bin_width(), 0.01);
  EXPECT_DOUBLE_EQ(dos.bin_center(0), 0.005);
  EXPECT_DOUBLE_EQ(dos.bin_center(99), 0.995);
}

TEST(DosGrid, ContainsIsHalfOpen) {
  const DosGrid dos(small_grid());
  EXPECT_TRUE(dos.contains(0.0));
  EXPECT_TRUE(dos.contains(0.999999));
  EXPECT_FALSE(dos.contains(1.0));
  EXPECT_FALSE(dos.contains(-1e-9));
}

TEST(DosGrid, BinIndexMapsEdgesCorrectly) {
  const DosGrid dos(small_grid());
  EXPECT_EQ(dos.bin_index(0.0), 0u);
  EXPECT_EQ(dos.bin_index(0.0099), 0u);
  EXPECT_EQ(dos.bin_index(0.01), 1u);
  EXPECT_EQ(dos.bin_index(0.9999), 99u);
}

TEST(DosGrid, VisitUpdatesLnGAtKernelCenter) {
  DosGrid dos(small_grid());
  const double e = dos.bin_center(50);
  dos.visit(e, 0.7);
  EXPECT_NEAR(dos.ln_g_values()[50], 0.7, 1e-12);  // k(0) = 1
  EXPECT_EQ(dos.histogram()[50], 1u);
  EXPECT_EQ(dos.visited()[50], 1);
  // Neighbours outside the (half-bin) kernel are untouched.
  EXPECT_DOUBLE_EQ(dos.ln_g_values()[49], 0.0);
  EXPECT_DOUBLE_EQ(dos.ln_g_values()[51], 0.0);
}

TEST(DosGrid, WideKernelSpreadsEpanechnikovWeights) {
  DosGridConfig config = small_grid();
  config.kernel_width_fraction = 0.025;  // 2.5 bins
  DosGrid dos(config);
  const double e = dos.bin_center(50);
  dos.visit(e, 1.0);
  EXPECT_NEAR(dos.ln_g_values()[50], 1.0, 1e-12);
  // One bin away: x = 0.4 -> k = 1 - 0.16 = 0.84.
  EXPECT_NEAR(dos.ln_g_values()[51], 0.84, 1e-12);
  EXPECT_NEAR(dos.ln_g_values()[49], 0.84, 1e-12);
  // Two bins away: x = 0.8 -> k = 0.36.
  EXPECT_NEAR(dos.ln_g_values()[52], 0.36, 1e-12);
  // Three bins away: outside support.
  EXPECT_DOUBLE_EQ(dos.ln_g_values()[53], 0.0);
  // Only the hit bin's histogram moves.
  EXPECT_EQ(dos.histogram()[51], 0u);
}

TEST(DosGrid, VisitReportsFirstTimeOnly) {
  DosGrid dos(small_grid());
  EXPECT_TRUE(dos.visit(0.205, 1.0));
  EXPECT_FALSE(dos.visit(0.205, 1.0));
  EXPECT_TRUE(dos.visit(0.305, 1.0));
}

TEST(DosGrid, LnGInterpolatesBetweenVisitedCenters) {
  DosGrid dos(small_grid());
  dos.visit(dos.bin_center(10), 2.0);
  dos.visit(dos.bin_center(11), 4.0);
  const double mid = 0.5 * (dos.bin_center(10) + dos.bin_center(11));
  EXPECT_NEAR(dos.ln_g(mid), 3.0, 1e-12);
  EXPECT_NEAR(dos.ln_g(dos.bin_center(10)), 2.0, 1e-12);
}

TEST(DosGrid, LnGNeverInterpolatesIntoUnvisitedBins) {
  // At the support edge the unvisited neighbour (carrying only kernel
  // spill) must not dilute the estimate: the walker would otherwise see an
  // artificially low ln g at the outer half of the edge bin and freeze
  // there (the instability fixed in test_wl_exact.cpp).
  DosGrid dos(small_grid());
  dos.visit(dos.bin_center(10), 2.0);
  const double mid = 0.5 * (dos.bin_center(10) + dos.bin_center(11));
  EXPECT_NEAR(dos.ln_g(mid), 2.0, 1e-12);  // nearest *visited* value
  const double mid_low = 0.5 * (dos.bin_center(9) + dos.bin_center(10));
  EXPECT_NEAR(dos.ln_g(mid_low), 2.0, 1e-12);
}

TEST(DosGrid, LnGClampsAtEnds) {
  DosGrid dos(small_grid());
  dos.visit(dos.bin_center(0), 3.0);
  EXPECT_NEAR(dos.ln_g(0.0001), 3.0, 1e-9);
}

TEST(DosGrid, ResetHistogramKeepsLnG) {
  DosGrid dos(small_grid());
  const double e = dos.bin_center(50);
  dos.visit(e, 1.0);
  dos.reset_histogram();
  EXPECT_EQ(dos.histogram_total(), 0u);
  EXPECT_GT(dos.ln_g(e), 0.0);
  EXPECT_EQ(dos.visited_bins(), 1u);  // visited mask survives
}

TEST(DosGrid, FlatnessRequiresStatistics) {
  DosGrid dos(small_grid());
  dos.visit(0.105, 1.0);
  dos.visit(0.115, 1.0);
  // Two visits only: mean below min_mean_visits.
  EXPECT_FALSE(dos.is_flat(0.8));
}

TEST(DosGrid, UniformVisitsAreFlat) {
  DosGrid dos(small_grid());
  for (int round = 0; round < 20; ++round)
    for (std::size_t b = 0; b < dos.bins(); ++b)
      dos.visit(dos.bin_center(b), 0.01);
  EXPECT_TRUE(dos.is_flat(0.9));
}

TEST(DosGrid, SkewedVisitsAreNotFlat) {
  DosGrid dos(small_grid());
  for (int round = 0; round < 20; ++round)
    for (std::size_t b = 0; b < dos.bins(); ++b) {
      dos.visit(dos.bin_center(b), 0.01);
      if (b < 50) dos.visit(dos.bin_center(b), 0.01);  // double weight low half
    }
  EXPECT_FALSE(dos.is_flat(0.8));
  // But a lax criterion accepts a 2:1 imbalance.
  EXPECT_TRUE(dos.is_flat(0.3));
}

TEST(DosGrid, SmoothedHistogramCoversKernelNeighborhood) {
  DosGridConfig config = small_grid();
  config.kernel_width_fraction = 0.02;  // 2 bins
  DosGrid dos(config);
  // Mark three adjacent bins visited; hit only the middle one.
  dos.visit(dos.bin_center(40), 0.0);
  dos.visit(dos.bin_center(41), 0.0);
  dos.visit(dos.bin_center(42), 0.0);
  for (int k = 0; k < 50; ++k) dos.visit(dos.bin_center(41), 0.0);
  const auto smoothed = dos.smoothed_histogram();
  // The unhit flanks inherit the middle bin's visits through the kernel
  // (normalized weighted average), so all three sit near the same level
  // even though the raw counts are {1, 51, 1}.
  EXPECT_GT(smoothed[40], 10.0);
  EXPECT_GT(smoothed[41], 10.0);
  EXPECT_GT(smoothed[42], 10.0);
  EXPECT_DOUBLE_EQ(smoothed[60], 0.0);  // never-visited bins stay zero
}

TEST(DosGrid, VisitedSeriesIsShiftedToZeroMinimum) {
  DosGrid dos(small_grid());
  dos.visit(dos.bin_center(10), 5.0);
  dos.visit(dos.bin_center(20), 2.0);
  const auto series = dos.visited_series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].second, 3.0);
  EXPECT_DOUBLE_EQ(series[1].second, 0.0);
}

TEST(DosGrid, CheckpointAccessorsRoundTrip) {
  DosGrid dos(small_grid());
  dos.visit(0.25, 1.0);
  std::vector<double> ln_g = dos.ln_g_values();
  std::vector<std::uint8_t> visited = dos.visited();
  DosGrid other(small_grid());
  other.set_ln_g_values(ln_g);
  other.set_visited(visited);
  EXPECT_EQ(other.ln_g_values(), dos.ln_g_values());
  EXPECT_EQ(other.visited(), dos.visited());
}

TEST(DosGrid, ContractViolations) {
  DosGrid dos(small_grid());
  EXPECT_THROW(dos.visit(2.0, 1.0), ContractError);
  EXPECT_THROW(dos.ln_g(2.0), ContractError);
  EXPECT_THROW(dos.bin_index(-0.1), ContractError);
  EXPECT_THROW(dos.is_flat(0.0), ContractError);
  EXPECT_THROW(dos.set_ln_g_values(std::vector<double>(3)), ContractError);
  DosGridConfig bad = small_grid();
  bad.e_max = bad.e_min;
  EXPECT_THROW(DosGrid{bad}, ContractError);
}

}  // namespace
}  // namespace wlsms::wl
