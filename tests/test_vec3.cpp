// Tests for the 3-vector primitive.
#include "common/vec3.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wlsms {
namespace {

TEST(Vec3, ArithmeticOperators) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-1.0, 0.5, 2.0};
  EXPECT_EQ(a + b, (Vec3{0.0, 2.5, 5.0}));
  EXPECT_EQ(a - b, (Vec3{2.0, 1.5, 1.0}));
  EXPECT_EQ(a * 2.0, (Vec3{2.0, 4.0, 6.0}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(a / 2.0, (Vec3{0.5, 1.0, 1.5}));
  EXPECT_EQ(-a, (Vec3{-1.0, -2.0, -3.0}));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1.0, 1.0, 1.0};
  v += Vec3{1.0, 2.0, 3.0};
  EXPECT_EQ(v, (Vec3{2.0, 3.0, 4.0}));
  v -= Vec3{2.0, 2.0, 2.0};
  EXPECT_EQ(v, (Vec3{0.0, 1.0, 2.0}));
  v *= 3.0;
  EXPECT_EQ(v, (Vec3{0.0, 3.0, 6.0}));
}

TEST(Vec3, DotProduct) {
  EXPECT_DOUBLE_EQ((Vec3{1, 2, 3}).dot({4, -5, 6}), 4 - 10 + 18);
  EXPECT_DOUBLE_EQ((Vec3{1, 0, 0}).dot({0, 1, 0}), 0.0);
}

TEST(Vec3, CrossProductRightHanded) {
  const Vec3 x{1, 0, 0};
  const Vec3 y{0, 1, 0};
  const Vec3 z{0, 0, 1};
  EXPECT_EQ(x.cross(y), z);
  EXPECT_EQ(y.cross(z), x);
  EXPECT_EQ(z.cross(x), y);
  EXPECT_EQ(y.cross(x), -z);
}

TEST(Vec3, CrossIsPerpendicular) {
  const Vec3 a{1.3, -0.2, 2.0};
  const Vec3 b{0.4, 1.7, -0.8};
  const Vec3 c = a.cross(b);
  EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
  EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
}

TEST(Vec3, NormAndNorm2) {
  const Vec3 v{3.0, 4.0, 12.0};
  EXPECT_DOUBLE_EQ(v.norm2(), 169.0);
  EXPECT_DOUBLE_EQ(v.norm(), 13.0);
}

TEST(Vec3, NormalizedHasUnitLength) {
  const Vec3 v{0.3, -2.0, 1.1};
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-14);
  // Direction is preserved.
  EXPECT_NEAR(v.normalized().dot(v), v.norm(), 1e-12);
}

TEST(Vec3, LagrangeIdentity) {
  // |a x b|^2 + (a.b)^2 = |a|^2 |b|^2
  const Vec3 a{1.1, -0.7, 0.3};
  const Vec3 b{-2.0, 0.4, 1.6};
  const double lhs = a.cross(b).norm2() + a.dot(b) * a.dot(b);
  EXPECT_NEAR(lhs, a.norm2() * b.norm2(), 1e-12);
}

TEST(Vec3, DefaultIsZero) {
  const Vec3 v;
  EXPECT_EQ(v, (Vec3{0.0, 0.0, 0.0}));
}

}  // namespace
}  // namespace wlsms
