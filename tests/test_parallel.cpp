// Tests for the thread pool, the asynchronous energy service, and the
// failure-injection decorator.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <atomic>
#include <cmath>
#include <set>

#include "heisenberg/heisenberg.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"
#include "parallel/async_service.hpp"
#include "parallel/failure.hpp"
#include "parallel/thread_pool.hpp"
#include "thermo/observables.hpp"
#include "wl/driver.hpp"

namespace wlsms::parallel {
namespace {

TEST(ThreadPool, ExecutesEveryTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int k = 0; k < 1000; ++k)
      pool.post([&counter] { counter.fetch_add(1); });
    // Destructor drains the queue.
  }
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, TasksRunConcurrentlyWithPoster) {
  std::atomic<bool> ran{false};
  ThreadPool pool(2);
  pool.post([&ran] { ran.store(true); });
  // Wait for completion without joining.
  for (int spin = 0; spin < 10000 && !ran.load(); ++spin)
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ZeroThreadsThrows) {
  EXPECT_THROW(ThreadPool{0}, ContractError);
}

wl::HeisenbergEnergy fe16_energy() {
  std::vector<double> j = lsms::fe_reference_exchange();
  for (double& v : j) v *= lsms::fe_exchange_energy_scale;
  return wl::HeisenbergEnergy(
      heisenberg::HeisenbergModel(lattice::make_fe_supercell(2), j));
}

TEST(AsyncEnergyService, CompletesAllRequestsWithCorrectEnergies) {
  const wl::HeisenbergEnergy energy = fe16_energy();
  AsyncEnergyService service(energy, 4);
  Rng rng(1);
  std::vector<spin::MomentConfiguration> configs;
  constexpr std::uint64_t kRequests = 64;
  for (std::uint64_t t = 0; t < kRequests; ++t) {
    configs.push_back(spin::MomentConfiguration::random(16, rng));
    service.submit({t % 8, t, configs.back()});
  }
  std::set<std::uint64_t> seen;
  for (std::uint64_t k = 0; k < kRequests; ++k) {
    const wl::EnergyResult result = service.retrieve();
    EXPECT_FALSE(result.failed);
    EXPECT_TRUE(seen.insert(result.ticket).second);
    EXPECT_NEAR(result.energy, energy.total_energy(configs[result.ticket]),
                1e-12);
    EXPECT_EQ(result.walker, result.ticket % 8);
  }
  EXPECT_EQ(service.outstanding(), 0u);
}

TEST(AsyncEnergyService, OutstandingTracksInFlightWork) {
  const wl::HeisenbergEnergy energy = fe16_energy();
  AsyncEnergyService service(energy, 2);
  Rng rng(2);
  for (std::uint64_t t = 0; t < 10; ++t)
    service.submit({0, t, spin::MomentConfiguration::random(16, rng)});
  for (int k = 10; k > 0; --k) {
    EXPECT_EQ(service.outstanding(), static_cast<std::size_t>(k));
    (void)service.retrieve();
  }
  EXPECT_EQ(service.outstanding(), 0u);
}

TEST(AsyncEnergyService, DrivesWangLandauEndToEnd) {
  // Full asynchronous stack: WL driver + thread-pool instances. Short
  // schedule; checks convergence machinery, not final physics precision.
  const wl::HeisenbergEnergy energy = fe16_energy();
  AsyncEnergyService service(energy, 4);

  Rng window_rng(5);
  wl::WangLandauConfig config;
  config.grid = wl::thermal_window(
      energy, energy.model().ferromagnetic_energy(), 150.0, window_rng);
  config.n_walkers = 4;
  config.check_interval = 5000;
  config.max_iteration_steps = 500000;
  config.max_steps = 20000000;

  wl::WlDriver driver(16, service, config,
                      std::make_unique<wl::HalvingSchedule>(1.0, 1e-3),
                      Rng(3));
  const wl::DriverStats& stats = driver.run();
  EXPECT_TRUE(driver.schedule().converged());
  EXPECT_EQ(stats.iterations, 10u);  // 2^-10 <= 1e-3
  const thermo::DosTable table = thermo::dos_table(driver.dos());
  const double u900 = thermo::observables_at(table, 900.0).internal_energy;
  EXPECT_NEAR(u900, -0.100, 0.02);  // Metropolis reference band (loose)
}

TEST(FailureInjection, RespectsProbability) {
  const wl::HeisenbergEnergy energy = fe16_energy();
  wl::SynchronousEnergyService inner(energy);
  FailureInjectingService service(inner, 0.25, Rng(7));
  Rng rng(8);
  constexpr int kTotal = 4000;
  int failures = 0;
  for (int t = 0; t < kTotal; ++t) {
    service.submit({0, static_cast<std::uint64_t>(t),
                    spin::MomentConfiguration::random(16, rng)});
    if (service.retrieve().failed) ++failures;
  }
  EXPECT_EQ(service.injected_failures(), static_cast<std::uint64_t>(failures));
  EXPECT_NEAR(static_cast<double>(failures) / kTotal, 0.25, 0.03);
}

TEST(FailureInjection, ZeroProbabilityIsTransparent) {
  const wl::HeisenbergEnergy energy = fe16_energy();
  wl::SynchronousEnergyService inner(energy);
  FailureInjectingService service(inner, 0.0, Rng(9));
  Rng rng(10);
  service.submit({0, 1, spin::MomentConfiguration::random(16, rng)});
  EXPECT_FALSE(service.retrieve().failed);
  EXPECT_EQ(service.injected_failures(), 0u);
}

TEST(FailureInjection, InvalidProbabilityThrows) {
  const wl::HeisenbergEnergy energy = fe16_energy();
  wl::SynchronousEnergyService inner(energy);
  EXPECT_THROW(FailureInjectingService(inner, 1.0, Rng(1)), ContractError);
  EXPECT_THROW(FailureInjectingService(inner, -0.1, Rng(1)), ContractError);
}

TEST(AsyncEnergyService, RetrieveWithoutOutstandingThrows) {
  const wl::HeisenbergEnergy energy = fe16_energy();
  AsyncEnergyService service(energy, 2);
  EXPECT_THROW(service.retrieve(), Error);
  Rng rng(11);
  service.submit({0, 1, spin::MomentConfiguration::random(16, rng)});
  (void)service.retrieve();
  EXPECT_THROW(service.retrieve(), Error);
}

TEST(FailureInjection, RetrieveWithoutOutstandingThrows) {
  const wl::HeisenbergEnergy energy = fe16_energy();
  wl::SynchronousEnergyService inner(energy);
  FailureInjectingService service(inner, 0.5, Rng(12));
  // Empty both ways: no failure notices pending and nothing in the inner
  // service — forwarding blindly would violate the inner contract instead
  // of this one.
  EXPECT_THROW(service.retrieve(), Error);
}

}  // namespace
}  // namespace wlsms::parallel
