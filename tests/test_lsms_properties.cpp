// Physics property tests of the multiple-scattering substrate beyond the
// unit level: symmetries and convergence behaviour the real LSMS has and
// any faithful stand-in must reproduce.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "lsms/exchange.hpp"
#include "lsms/fe_parameters.hpp"
#include "lsms/solver.hpp"

namespace wlsms::lsms {
namespace {

spin::MomentConfiguration flipped(const spin::MomentConfiguration& config) {
  std::vector<Vec3> dirs;
  dirs.reserve(config.size());
  for (std::size_t i = 0; i < config.size(); ++i) dirs.push_back(-config[i]);
  return spin::MomentConfiguration::from_directions(dirs);
}

TEST(LsmsProperties, TimeReversalInvariance) {
  // Without spin-orbit coupling or external fields, reversing every moment
  // leaves the frozen-potential energy unchanged.
  const LsmsSolver solver(lattice::make_fe_supercell(2),
                          fe_lsms_parameters_fast());
  Rng rng(1);
  for (int k = 0; k < 3; ++k) {
    const auto config = spin::MomentConfiguration::random(16, rng);
    const double e = solver.energy(config);
    EXPECT_NEAR(solver.energy(flipped(config)), e,
                1e-10 * std::abs(e) + 1e-13);
  }
}

TEST(LsmsProperties, PerAtomFmEnergyIndependentOfCellSize) {
  // The ferromagnetic reference is translation invariant: per-atom local
  // energies must agree across supercell sizes (all zones congruent).
  LsmsParameters params = fe_lsms_parameters_fast();
  const LsmsSolver small(lattice::make_fe_supercell(2), params);
  const LsmsSolver large(lattice::make_fe_supercell(3), params);
  const double e_small =
      small.energy(spin::MomentConfiguration::ferromagnetic(16)) / 16.0;
  const double e_large =
      large.energy(spin::MomentConfiguration::ferromagnetic(54)) / 54.0;
  EXPECT_NEAR(e_small, e_large, 1e-10);
}

TEST(LsmsProperties, ContourRefinementConverges) {
  // Gauss-Legendre on the semicircle converges fast; doubling the node
  // count must change energy differences far less than the differences
  // themselves.
  const lattice::Structure cell = lattice::make_fe_supercell(2);
  LsmsParameters coarse = fe_lsms_parameters_fast();
  coarse.contour_points = 8;
  LsmsParameters fine = coarse;
  fine.contour_points = 16;
  const LsmsSolver solver_coarse(cell, coarse);
  const LsmsSolver solver_fine(cell, fine);

  Rng rng(2);
  const auto a = spin::MomentConfiguration::random(16, rng);
  const auto b = spin::MomentConfiguration::ferromagnetic(16);
  const double diff_coarse = solver_coarse.energy(a) - solver_coarse.energy(b);
  const double diff_fine = solver_fine.energy(a) - solver_fine.energy(b);
  EXPECT_NEAR(diff_coarse, diff_fine, 0.05 * std::abs(diff_fine));
}

TEST(LsmsProperties, ExchangeScalesQuadraticallyWithHybridization) {
  // RKKY exchange is second order in the inter-site propagation, so the
  // extracted J1 must scale ~quadratically with the propagator strength in
  // the weak-coupling regime.
  const lattice::Structure cell = lattice::make_fe_supercell(2);
  const auto j1_at = [&cell](double strength) {
    LsmsParameters params = fe_lsms_parameters_fast();
    params.scattering.propagator_strength = strength;
    const LsmsSolver solver(cell, params);
    Rng rng(42);
    return extract_exchange(solver, 1, 16, rng).shells[0].j;
  };
  // Compare inside the perturbative window (the production C = 1 already
  // has visible higher-order corrections).
  const double j_weak = j1_at(0.1);
  const double j_strong = j1_at(0.25);
  EXPECT_NEAR(j_strong / j_weak, 6.25, 1.5);  // (0.25/0.1)^2 = 6.25
}

TEST(LsmsProperties, SingleMomentRotationCosineProfile) {
  // Rotating one moment by theta against a ferromagnetic background gives
  // E(theta) ~ E0 - Jeff cos(theta) to leading order: the magnetic force
  // theorem's bilinear form (paper §II-B, "valid to second order").
  const LsmsSolver solver(lattice::make_fe_supercell(2),
                          fe_lsms_parameters_fast());
  const auto energy_at = [&solver](double theta) {
    std::vector<Vec3> dirs(16, Vec3{0, 0, 1});
    dirs[3] = Vec3{std::sin(theta), 0.0, std::cos(theta)};
    return solver.energy(spin::MomentConfiguration::from_directions(dirs));
  };
  const double e0 = energy_at(0.0);
  const double e_pi = energy_at(std::acos(-1.0));
  const double e_half = energy_at(std::acos(-1.0) / 2.0);
  // cos profile: E(pi/2) sits near the midpoint of E(0) and E(pi); the
  // deviation measures the (real, expected) beyond-bilinear terms, which
  // stay below ~20% at these couplings.
  EXPECT_NEAR(e_half, 0.5 * (e0 + e_pi), 0.20 * (e_pi - e0));
  // Rotating against the FM background costs energy (ferromagnet).
  EXPECT_GT(e_pi, e0);
}

TEST(LsmsProperties, EnergyIsSmoothUnderSmallRotations) {
  // The WL walk relies on a continuous energy landscape: a small rotation
  // must produce a proportionally small energy change.
  const LsmsSolver solver(lattice::make_fe_supercell(2),
                          fe_lsms_parameters_fast());
  Rng rng(3);
  const auto config = spin::MomentConfiguration::random(16, rng);
  const double e0 = solver.energy(config);
  for (double eps : {1e-3, 1e-4}) {
    auto perturbed = config;
    const Vec3 m = config[7];
    Vec3 axis = (std::abs(m.z) < 0.9) ? Vec3{0, 0, 1} : Vec3{1, 0, 0};
    const Vec3 tangent = m.cross(axis).normalized();
    perturbed.set(7, (m + eps * tangent).normalized());
    const double de = std::abs(solver.energy(perturbed) - e0);
    EXPECT_LT(de, 10.0 * eps);  // Lipschitz at the exchange scale
  }
}

TEST(LsmsProperties, ReferenceParametersMatchPaperGeometry) {
  const LsmsParameters params = fe_lsms_parameters();
  EXPECT_DOUBLE_EQ(params.liz_radius, 11.5);
  const LsmsSolver solver(lattice::make_fe_supercell(2), params);
  EXPECT_EQ(solver.liz_size(0), 65u);  // §III: "including 65 atoms"
  EXPECT_GT(lsms::fe_exchange_energy_scale, 0.0);
  EXPECT_LT(lsms::fe_exchange_energy_scale, 1.0);
}

}  // namespace
}  // namespace wlsms::lsms
