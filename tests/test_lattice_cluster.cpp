// Tests for the finite nanoparticle builders.
#include "lattice/cluster.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "common/units.hpp"
#include "lattice/shells.hpp"

namespace wlsms::lattice {
namespace {

TEST(SphericalCluster, AtomCenteredSmallestIsSingleShellCluster) {
  // Radius just beyond the bcc nearest-neighbour distance: centre + 8.
  const double a = 2.0;
  const double nn = a * std::sqrt(3.0) / 2.0;
  const Structure c =
      make_spherical_cluster(CubicLattice::kBcc, a, nn * 1.01, true);
  EXPECT_EQ(c.size(), 9u);
}

TEST(SphericalCluster, GrowsWithRadius) {
  const double a = units::fe_lattice_parameter_a0;
  std::size_t previous = 0;
  for (double radius : {5.0, 8.0, 11.0, 14.0}) {
    const std::size_t n =
        make_spherical_cluster(CubicLattice::kBcc, a, radius).size();
    EXPECT_GT(n, previous);
    previous = n;
  }
}

TEST(SphericalCluster, AllAtomsWithinRadius) {
  const Structure c = make_spherical_cluster(CubicLattice::kBcc, 2.0, 5.0);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_LE(c.position(i).norm(), 5.0 + 1e-9);
}

TEST(SphericalCluster, NanoparticleRegimeReachable) {
  // The paper targets "around one hundred to a few thousand atoms" (§I).
  const double a = units::fe_lattice_parameter_a0;
  const std::size_t n =
      make_spherical_cluster(CubicLattice::kBcc, a, 2.6 * a).size();
  EXPECT_GT(n, 100u);
  EXPECT_LT(n, 400u);
}

TEST(SphericalCluster, NotPeriodic) {
  const Structure c = make_spherical_cluster(CubicLattice::kBcc, 2.0, 4.0);
  EXPECT_FALSE(c.is_periodic());
}

TEST(CubicCluster, OpenBoundaries) {
  const Structure c =
      make_cubic_cluster(CubicLattice::kSimpleCubic, 1.0, 3, 3, 3);
  EXPECT_EQ(c.size(), 27u);
  EXPECT_FALSE(c.is_periodic());
  // A corner atom has only 3 nearest neighbours.
  std::size_t min_coordination = 99;
  for (std::size_t i = 0; i < c.size(); ++i)
    min_coordination =
        std::min(min_coordination, c.neighbors_within(i, 1.01).size());
  EXPECT_EQ(min_coordination, 3u);
}

TEST(SurfaceAtoms, DetectsShellOfSphere) {
  const double a = 2.0;
  const double nn_cutoff = a * std::sqrt(3.0) / 2.0 * 1.01;
  const Structure c = make_spherical_cluster(CubicLattice::kBcc, a, 3.0 * a);
  const auto surface = surface_atoms(c, nn_cutoff, 8);
  EXPECT_GT(surface.size(), 0u);
  EXPECT_LT(surface.size(), c.size());
  // Surface atoms sit farther out than the cluster centre of mass.
  double mean_surface_r = 0.0;
  for (std::size_t i : surface) mean_surface_r += c.position(i).norm();
  mean_surface_r /= static_cast<double>(surface.size());
  double mean_r = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i)
    mean_r += c.position(i).norm();
  mean_r /= static_cast<double>(c.size());
  EXPECT_GT(mean_surface_r, mean_r);
}

TEST(SurfaceAtoms, SurfaceFractionShrinksWithSize) {
  // §I: "in small particles ... the surface region contains a significant
  // fraction of the particle volume".
  const double a = 2.0;
  const double nn_cutoff = a * std::sqrt(3.0) / 2.0 * 1.01;
  const Structure small = make_spherical_cluster(CubicLattice::kBcc, a, 2.5 * a);
  const Structure large = make_spherical_cluster(CubicLattice::kBcc, a, 5.0 * a);
  const double f_small =
      static_cast<double>(surface_atoms(small, nn_cutoff, 8).size()) /
      static_cast<double>(small.size());
  const double f_large =
      static_cast<double>(surface_atoms(large, nn_cutoff, 8).size()) /
      static_cast<double>(large.size());
  EXPECT_GT(f_small, f_large);
  EXPECT_GT(f_small, 0.3);
}

TEST(SphericalCluster, InvalidRadiusThrows) {
  EXPECT_THROW(make_spherical_cluster(CubicLattice::kBcc, 2.0, -1.0),
               ContractError);
}

}  // namespace
}  // namespace wlsms::lattice
