#!/usr/bin/env python3
"""Structural assertions on a tools/trace_merge.py output.

Given a merged Chrome trace produced from one controller + >=2 external
worker runs, asserts the properties the distributed-tracing stack promises:

  1. spans from >= 3 distinct processes survived the merge;
  2. at least one controller-side span is the (cross-process) parent of
     worker-side spans in >= 2 other processes — i.e. one request's spans
     connect across at least three processes;
  3. those links are causally time-aligned in the merged (reference)
     timebase: a child span cannot begin measurably before its parent.

Exits 0 on success, 1 with a diagnostic on any violated property.
"""

import collections
import json
import sys

# Clock-offset estimation error budget: loopback NTP-style probes are
# accurate to well under a millisecond; allow 2 ms before calling a child
# "before its cause".
SLACK_US = 2000.0


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1], "r", encoding="utf-8") as handle:
        document = json.load(handle)
    spans = [
        event
        for event in document.get("traceEvents", [])
        if isinstance(event, dict) and event.get("ph") == "X"
    ]
    if not spans:
        print("merged trace contains no spans", file=sys.stderr)
        return 1

    pids = {event["pid"] for event in spans}
    if len(pids) < 3:
        print(f"expected spans from >= 3 processes, got pids {sorted(pids)}",
              file=sys.stderr)
        return 1

    by_id = {event["args"]["id"]: event
             for event in spans if event["args"].get("id")}

    # Cross-process parent links: child pids grouped per parent span.
    children = collections.defaultdict(set)
    cross_links = 0
    for event in spans:
        parent_id = event["args"].get("parent", 0)
        parent = by_id.get(parent_id)
        if parent is None or parent["pid"] == event["pid"]:
            continue
        cross_links += 1
        children[parent_id].add(event["pid"])
        if event["ts"] + SLACK_US < parent["ts"]:
            print(
                f"span '{event['name']}' (pid {event['pid']}, "
                f"ts {event['ts']:.1f}) begins before its parent "
                f"'{parent['name']}' (pid {parent['pid']}, "
                f"ts {parent['ts']:.1f}): clocks are not aligned",
                file=sys.stderr)
            return 1

    if cross_links == 0:
        print("no cross-process parent links survived the merge",
              file=sys.stderr)
        return 1

    spanning = {
        parent_id: child_pids
        for parent_id, child_pids in children.items()
        if len(child_pids | {by_id[parent_id]["pid"]}) >= 3
    }
    if not spanning:
        print(
            "no single span's request fans out across >= 3 processes; "
            f"cross-process links: {cross_links}, fan-outs: "
            f"{[sorted(p) for p in children.values()]}",
            file=sys.stderr)
        return 1

    parent_id = next(iter(spanning))
    parent = by_id[parent_id]
    print(
        f"ok: {len(spans)} spans over {len(pids)} processes, "
        f"{cross_links} cross-process links; e.g. '{parent['name']}' "
        f"(pid {parent['pid']}) parents spans in pids "
        f"{sorted(spanning[parent_id])}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
