// SnapshotWriter: the JSONL stream has a "start" and a "final" record, every
// record carries the full schema (counters, gauges, histograms, per-kernel
// flops, Flop/s, gemm_fraction), interval records appear while the writer
// runs, and each line parses with the obs JSON parser.
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"

namespace wlsms::obs {
namespace {

std::vector<JsonValue> read_jsonl(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  EXPECT_NE(file, nullptr) << path;
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while (file && (got = std::fread(buffer, 1, sizeof buffer, file)) > 0)
    text.append(buffer, got);
  if (file) std::fclose(file);

  std::vector<JsonValue> records;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line))
    if (!line.empty()) records.push_back(JsonValue::parse(line));
  return records;
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::instance().reset_values_for_testing(); }
};

TEST_F(SnapshotTest, StreamHasStartAndFinalWithFullSchema) {
  Registry::instance().counter("snap.test.counter").add(3);
  Registry::instance().gauge("snap.test.gauge").set(0.5);
  Registry::instance().histogram("snap.test.h", {1.0, 2.0}).observe(1.5);

  const std::string path = ::testing::TempDir() + "wlsms_snapshot_basic.jsonl";
  {
    SnapshotConfig config;
    config.path = path;
    config.interval = std::chrono::milliseconds(10000);  // no interval record
    SnapshotWriter writer(config);
  }

  const std::vector<JsonValue> records = read_jsonl(path);
  std::remove(path.c_str());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records.front().at("reason").as_string(), "start");
  EXPECT_EQ(records.back().at("reason").as_string(), "final");

  for (const JsonValue& record : records) {
    EXPECT_TRUE(record.contains("t_ms"));
    EXPECT_EQ(record.at("counters").at("snap.test.counter").as_number(), 3.0);
    EXPECT_EQ(record.at("gauges").at("snap.test.gauge").as_number(), 0.5);
    const JsonValue& histogram = record.at("histograms").at("snap.test.h");
    EXPECT_EQ(histogram.at("count").as_number(), 1.0);
    EXPECT_EQ(histogram.at("bounds").as_array().size(), 2u);
    EXPECT_EQ(histogram.at("counts").as_array().size(), 3u);
    // Per-kernel flop schema is always present, even at zero.
    const JsonValue& flops = record.at("flops");
    for (const char* kernel : {"zgemm", "trsm", "panel", "other", "total"})
      EXPECT_TRUE(flops.contains(kernel)) << kernel;
    EXPECT_TRUE(record.contains("flops_per_s"));
    EXPECT_TRUE(record.contains("gemm_fraction"));
  }
}

TEST_F(SnapshotTest, BackgroundThreadWritesIntervalRecords) {
  const std::string path =
      ::testing::TempDir() + "wlsms_snapshot_interval.jsonl";
  {
    SnapshotConfig config;
    config.path = path;
    config.interval = std::chrono::milliseconds(20);
    SnapshotWriter writer(config);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
  }
  const std::vector<JsonValue> records = read_jsonl(path);
  std::remove(path.c_str());
  ASSERT_GE(records.size(), 3u);  // start + >=1 interval + final
  std::size_t intervals = 0;
  double last_t = -1.0;
  for (const JsonValue& record : records) {
    if (record.at("reason").as_string() == "interval") ++intervals;
    const double t = record.at("t_ms").as_number();
    EXPECT_GE(t, last_t);  // timestamps are monotonic within the stream
    last_t = t;
  }
  EXPECT_GE(intervals, 1u);
}

TEST_F(SnapshotTest, ManualRecordsCarryCallerTag) {
  const std::string path = ::testing::TempDir() + "wlsms_snapshot_tag.jsonl";
  {
    SnapshotConfig config;
    config.path = path;
    config.interval = std::chrono::milliseconds(10000);
    SnapshotWriter writer(config);
    Registry::instance().counter("snap.tag.counter").inc();
    writer.write_record("checkpoint");
  }
  const std::vector<JsonValue> records = read_jsonl(path);
  std::remove(path.c_str());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[1].at("reason").as_string(), "checkpoint");
  // The manual record sees state as of its call, not the writer's start.
  EXPECT_EQ(records[1].at("counters").at("snap.tag.counter").as_number(), 1.0);
  EXPECT_FALSE(records[0].at("counters").contains("snap.tag.counter"));
}

TEST_F(SnapshotTest, UnopenablePathThrows) {
  SnapshotConfig config;
  config.path = "/nonexistent-dir/snapshot.jsonl";
  EXPECT_THROW(SnapshotWriter writer(config), Error);
}

}  // namespace
}  // namespace wlsms::obs
