// End-to-end daemon tests over real TCP loopback sockets: hostile byte
// streams against a live daemon, admission-control backpressure on the
// wire, checkpointed session resume, a client killed during a batched
// solve, and a multi-client connect/disconnect soak — the daemon must never
// crash, leak sessions (the serve.sessions gauge returns to zero), or stall
// the surviving tenants.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/socket_util.hpp"

namespace wlsms::serve {
namespace {

std::shared_ptr<const lsms::LsmsSolver> small_solver() {
  static const auto solver = std::make_shared<const lsms::LsmsSolver>(
      lattice::make_fe_supercell(2), lsms::fe_lsms_parameters_fast());
  return solver;
}

/// Daemon on an ephemeral loopback port with its poll loop on a thread.
class DaemonFixture {
 public:
  explicit DaemonFixture(ServeOptions options)
      : daemon_(small_solver(), std::move(options)),
        thread_([this] { daemon_.run(); }) {}

  ~DaemonFixture() {
    daemon_.stop();
    thread_.join();
  }

  Daemon& daemon() { return daemon_; }
  const std::string& address() const { return daemon_.address(); }

 private:
  Daemon daemon_;
  std::thread thread_;
};

wl::EnergyRequest make_request(std::uint64_t ticket, Rng& rng) {
  wl::EnergyRequest request;
  request.walker = static_cast<std::size_t>(ticket % 8);
  request.ticket = ticket;
  request.config =
      spin::MomentConfiguration::random(small_solver()->n_atoms(), rng);
  return request;
}

bool wait_for_sessions_gauge(double expected,
                             std::chrono::milliseconds timeout) {
  obs::Gauge& gauge = obs::Registry::instance().gauge("serve.sessions");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (gauge.value() == expected) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return gauge.value() == expected;
}

TEST(ServeTcp, GarbageStreamsAgainstLiveDaemonNeverCrashIt) {
  ServeOptions options;
  options.handshake_timeout = std::chrono::milliseconds(300);
  DaemonFixture fixture(options);
  Rng rng(901);

  // A mix of hostile connections: pure garbage, an oversize length field,
  // a valid frame header with a garbage hello, and a silent half-open
  // connection that must be expired by the handshake deadline.
  for (int round = 0; round < 10; ++round) {
    net::Socket sock = net::connect_with_timeout(
        fixture.address(), std::chrono::milliseconds(2000));
    std::vector<char> garbage(16 + rng.uniform_index(256));
    for (char& c : garbage)
      c = static_cast<char>(rng.uniform_index(256));
    if (round % 3 == 0) {
      // Frame-shaped prefix with a hostile length.
      const std::uint32_t huge = 0x7FFFFFFFu;
      std::memcpy(garbage.data(), &huge, sizeof(huge));
    }
    (void)!::write(sock.get(), garbage.data(), garbage.size());
    // Half of them hang up immediately, half linger for the reaper.
    if (round % 2 == 0) sock.close();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  // The daemon is still alive and serving correct energies.
  ServeClient client(fixture.address());
  const wl::EnergyRequest request = make_request(1, rng);
  client.submit(request);
  const wl::EnergyResult result = client.retrieve();
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.energy, small_solver()->energy(request.config));
}

TEST(ServeTcp, QueueFullBackpressureRejectsOnTheWire) {
  ServeOptions options;
  options.limits.max_pending = 2;
  options.limits.max_session_outstanding = 16;
  options.limits.max_batch = 16;
  options.limits.batch_window = std::chrono::milliseconds(300);
  DaemonFixture fixture(options);
  Rng rng(902);

  ServeClient client(fixture.address());
  std::vector<wl::EnergyRequest> requests;
  for (std::uint64_t t = 1; t <= 5; ++t) {
    requests.push_back(make_request(t, rng));
    client.submit(requests.back());
  }
  std::size_t rejected = 0, succeeded = 0;
  while (client.outstanding() > 0) {
    const wl::EnergyResult result = client.retrieve();
    if (result.failed) {
      ++rejected;
    } else {
      ++succeeded;
      EXPECT_EQ(result.energy,
                small_solver()->energy(requests[result.ticket - 1].config));
    }
  }
  EXPECT_EQ(succeeded, 2u);
  EXPECT_EQ(rejected, 3u);
}

TEST(ServeTcp, SessionCheckpointResumeRecoversPendingWork) {
  char dir_template[] = "/tmp/wlsms-serve-XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string checkpoint_dir = dir_template;

  ServeOptions options;
  options.checkpoint_dir = checkpoint_dir;
  options.limits.batch_window = std::chrono::milliseconds(500);
  options.limits.max_batch = 16;
  DaemonFixture fixture(options);
  Rng rng(903);

  std::vector<wl::EnergyRequest> requests;
  std::uint64_t session = 0, token = 0;
  {
    ClientOptions client_options;
    client_options.tenant = "resumer";
    ServeClient client(fixture.address(), client_options);
    session = client.session();
    token = client.resume_token();
    for (std::uint64_t t = 1; t <= 3; ++t) {
      requests.push_back(make_request(t, rng));
      client.submit(requests.back());
    }
    client.abort_socket();  // die with 3 requests in flight
  }
  ASSERT_TRUE(wait_for_sessions_gauge(0.0, std::chrono::seconds(5)));
  const std::string checkpoint_file =
      checkpoint_dir + "/session-" + std::to_string(session) + ".wlsm";
  ASSERT_EQ(::access(checkpoint_file.c_str(), F_OK), 0);

  // The wrong token must not resurrect the session.
  {
    ClientOptions stolen;
    stolen.tenant = "resumer";
    stolen.resume_session = session;
    stolen.resume_token = token ^ 1;
    EXPECT_THROW(ServeClient(fixture.address(), stolen), comm::CommError);
  }

  ClientOptions resume_options;
  resume_options.tenant = "resumer";
  resume_options.resume_session = session;
  resume_options.resume_token = token;
  ServeClient resumed(fixture.address(), resume_options);
  EXPECT_TRUE(resumed.resumed());
  EXPECT_EQ(resumed.session(), session);
  ASSERT_EQ(resumed.outstanding(), 3u);
  std::size_t received = 0;
  while (resumed.outstanding() > 0) {
    const wl::EnergyResult result = resumed.retrieve();
    ASSERT_FALSE(result.failed);
    EXPECT_EQ(result.energy,
              small_solver()->energy(requests[result.ticket - 1].config));
    ++received;
  }
  EXPECT_EQ(received, 3u);
  // A consumed checkpoint is deleted — it cannot be replayed twice.
  EXPECT_NE(::access(checkpoint_file.c_str(), F_OK), 0);

  std::remove(checkpoint_file.c_str());
  ::rmdir(checkpoint_dir.c_str());
}

TEST(ServeTcp, KillingAClientMidBatchDoesNotStallTheOtherTenant) {
  ServeOptions options;
  options.limits.max_batch = 8;
  options.limits.batch_window = std::chrono::milliseconds(100);
  DaemonFixture fixture(options);
  Rng rng(904);

  ClientOptions alice_options;
  alice_options.tenant = "alice";
  ServeClient alice(fixture.address(), alice_options);
  ClientOptions bob_options;
  bob_options.tenant = "bob";
  ServeClient bob(fixture.address(), bob_options);

  std::vector<wl::EnergyRequest> bob_requests;
  for (std::uint64_t t = 1; t <= 4; ++t) {
    alice.submit(make_request(100 + t, rng));
    bob_requests.push_back(make_request(t, rng));
    bob.submit(bob_requests.back());
  }
  alice.abort_socket();  // alice dies while her requests are co-batched

  std::size_t received = 0;
  while (bob.outstanding() > 0) {
    const wl::EnergyResult result = bob.retrieve();
    ASSERT_FALSE(result.failed);
    EXPECT_EQ(
        result.energy,
        small_solver()->energy(bob_requests[result.ticket - 1].config));
    ++received;
  }
  EXPECT_EQ(received, 4u);
}

TEST(ServeTcp, MultiClientChaosSoakLeaksNothingAndStallsNoOne) {
  ServeOptions options;
  options.limits.max_batch = 8;
  options.limits.max_pending = 128;
  options.limits.batch_window = std::chrono::milliseconds(5);
  DaemonFixture fixture(options);

  std::atomic<bool> chaos_failed{false};
  std::vector<std::thread> chaos;
  for (int c = 0; c < 3; ++c) {
    chaos.emplace_back([&fixture, &chaos_failed, c] {
      try {
        Rng rng(910 + static_cast<std::uint64_t>(c));
        for (int iteration = 0; iteration < 3; ++iteration) {
          ClientOptions client_options;
          client_options.tenant = "chaos" + std::to_string(c);
          ServeClient client(fixture.address(), client_options);
          const std::size_t n_submit = 1 + rng.uniform_index(3);
          for (std::size_t t = 0; t < n_submit; ++t)
            client.submit(make_request(t + 1, rng));
          if (rng.uniform_index(2) == 0) {
            client.abort_socket();  // vanish mid-flight
          } else {
            while (client.outstanding() > 0) (void)client.retrieve();
          }
        }
      } catch (const std::exception&) {
        chaos_failed = true;
      }
    });
  }

  // The stable tenant keeps computing correct energies throughout.
  Rng rng(909);
  ClientOptions stable_options;
  stable_options.tenant = "stable";
  {
    ServeClient stable(fixture.address(), stable_options);
    for (int round = 0; round < 3; ++round) {
      std::vector<wl::EnergyRequest> requests;
      for (std::uint64_t t = 1; t <= 4; ++t) {
        requests.push_back(make_request(t, rng));
        stable.submit(requests.back());
      }
      while (stable.outstanding() > 0) {
        const wl::EnergyResult result = stable.retrieve();
        ASSERT_FALSE(result.failed);
        EXPECT_EQ(
            result.energy,
            small_solver()->energy(requests[result.ticket - 1].config));
      }
    }
  }
  for (std::thread& t : chaos) t.join();
  EXPECT_FALSE(chaos_failed.load());

  // Every connection is gone; the daemon must not leak a single session.
  EXPECT_TRUE(wait_for_sessions_gauge(0.0, std::chrono::seconds(5)));
}

}  // namespace
}  // namespace wlsms::serve
