// End-to-end daemon tests over real TCP loopback sockets: hostile byte
// streams against a live daemon, admission-control backpressure on the
// wire, checkpointed session resume, a client killed during a batched
// solve, and a multi-client connect/disconnect soak — the daemon must never
// crash, leak sessions (the serve.sessions gauge returns to zero), or stall
// the surviving tenants.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include <dirent.h>

#include "comm/framing.hpp"
#include "common/rng.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/socket_util.hpp"

namespace wlsms::serve {
namespace {

std::shared_ptr<const lsms::LsmsSolver> small_solver() {
  static const auto solver = std::make_shared<const lsms::LsmsSolver>(
      lattice::make_fe_supercell(2), lsms::fe_lsms_parameters_fast());
  return solver;
}

/// Daemon on an ephemeral loopback port with its poll loop on a thread.
class DaemonFixture {
 public:
  explicit DaemonFixture(ServeOptions options)
      : daemon_(small_solver(), std::move(options)),
        thread_([this] { daemon_.run(); }) {}

  ~DaemonFixture() {
    daemon_.stop();
    thread_.join();
  }

  Daemon& daemon() { return daemon_; }
  const std::string& address() const { return daemon_.address(); }

 private:
  Daemon daemon_;
  std::thread thread_;
};

wl::EnergyRequest make_request(std::uint64_t ticket, Rng& rng) {
  wl::EnergyRequest request;
  request.walker = static_cast<std::size_t>(ticket % 8);
  request.ticket = ticket;
  request.config =
      spin::MomentConfiguration::random(small_solver()->n_atoms(), rng);
  return request;
}

/// Unlinks everything inside `dir` and removes it (daemons write session
/// checkpoints on every clean disconnect, so tests sweep rather than
/// enumerate).
void remove_checkpoint_dir(const std::string& dir) {
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      (void)std::remove((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  (void)::rmdir(dir.c_str());
}

bool wait_for_sessions_gauge(double expected,
                             std::chrono::milliseconds timeout) {
  obs::Gauge& gauge = obs::Registry::instance().gauge("serve.sessions");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (gauge.value() == expected) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return gauge.value() == expected;
}

TEST(ServeTcp, GarbageStreamsAgainstLiveDaemonNeverCrashIt) {
  ServeOptions options;
  options.handshake_timeout = std::chrono::milliseconds(300);
  DaemonFixture fixture(options);
  Rng rng(901);

  // A mix of hostile connections: pure garbage, an oversize length field,
  // a valid frame header with a garbage hello, and a silent half-open
  // connection that must be expired by the handshake deadline.
  for (int round = 0; round < 10; ++round) {
    net::Socket sock = net::connect_with_timeout(
        fixture.address(), std::chrono::milliseconds(2000));
    std::vector<char> garbage(16 + rng.uniform_index(256));
    for (char& c : garbage)
      c = static_cast<char>(rng.uniform_index(256));
    if (round % 3 == 0) {
      // Frame-shaped prefix with a hostile length.
      const std::uint32_t huge = 0x7FFFFFFFu;
      std::memcpy(garbage.data(), &huge, sizeof(huge));
    }
    (void)!::write(sock.get(), garbage.data(), garbage.size());
    // Half of them hang up immediately, half linger for the reaper.
    if (round % 2 == 0) sock.close();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  // The daemon is still alive and serving correct energies.
  ServeClient client(fixture.address());
  const wl::EnergyRequest request = make_request(1, rng);
  client.submit(request);
  const wl::EnergyResult result = client.retrieve();
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.energy, small_solver()->energy(request.config));
}

TEST(ServeTcp, QueueFullBackpressureRejectsOnTheWire) {
  ServeOptions options;
  options.limits.max_pending = 2;
  options.limits.max_session_outstanding = 16;
  options.limits.max_batch = 16;
  options.limits.batch_window = std::chrono::milliseconds(300);
  DaemonFixture fixture(options);
  Rng rng(902);

  ServeClient client(fixture.address());
  std::vector<wl::EnergyRequest> requests;
  for (std::uint64_t t = 1; t <= 5; ++t) {
    requests.push_back(make_request(t, rng));
    client.submit(requests.back());
  }
  std::size_t rejected = 0, succeeded = 0;
  while (client.outstanding() > 0) {
    const wl::EnergyResult result = client.retrieve();
    if (result.failed) {
      ++rejected;
    } else {
      ++succeeded;
      EXPECT_EQ(result.energy,
                small_solver()->energy(requests[result.ticket - 1].config));
    }
  }
  EXPECT_EQ(succeeded, 2u);
  EXPECT_EQ(rejected, 3u);
}

TEST(ServeTcp, SessionCheckpointResumeRecoversPendingWork) {
  char dir_template[] = "/tmp/wlsms-serve-XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string checkpoint_dir = dir_template;

  ServeOptions options;
  options.checkpoint_dir = checkpoint_dir;
  options.limits.batch_window = std::chrono::milliseconds(500);
  options.limits.max_batch = 16;
  DaemonFixture fixture(options);
  Rng rng(903);

  std::vector<wl::EnergyRequest> requests;
  std::uint64_t session = 0, token = 0;
  {
    ClientOptions client_options;
    client_options.tenant = "resumer";
    ServeClient client(fixture.address(), client_options);
    session = client.session();
    token = client.resume_token();
    for (std::uint64_t t = 1; t <= 3; ++t) {
      requests.push_back(make_request(t, rng));
      client.submit(requests.back());
    }
    client.abort_socket();  // die with 3 requests in flight
  }
  ASSERT_TRUE(wait_for_sessions_gauge(0.0, std::chrono::seconds(5)));
  const std::string checkpoint_file =
      checkpoint_dir + "/session-" + std::to_string(session) + ".wlsm";
  ASSERT_EQ(::access(checkpoint_file.c_str(), F_OK), 0);

  // The wrong token must not resurrect the session.
  {
    ClientOptions stolen;
    stolen.tenant = "resumer";
    stolen.resume_session = session;
    stolen.resume_token = token ^ 1;
    EXPECT_THROW(ServeClient(fixture.address(), stolen), comm::CommError);
  }

  ClientOptions resume_options;
  resume_options.tenant = "resumer";
  resume_options.resume_session = session;
  resume_options.resume_token = token;
  ServeClient resumed(fixture.address(), resume_options);
  EXPECT_TRUE(resumed.resumed());
  EXPECT_EQ(resumed.session(), session);
  ASSERT_EQ(resumed.outstanding(), 3u);
  std::size_t received = 0;
  while (resumed.outstanding() > 0) {
    const wl::EnergyResult result = resumed.retrieve();
    ASSERT_FALSE(result.failed);
    EXPECT_EQ(result.energy,
              small_solver()->energy(requests[result.ticket - 1].config));
    ++received;
  }
  EXPECT_EQ(received, 3u);
  // A consumed checkpoint is deleted — it cannot be replayed twice.
  EXPECT_NE(::access(checkpoint_file.c_str(), F_OK), 0);

  std::remove(checkpoint_file.c_str());
  ::rmdir(checkpoint_dir.c_str());
}

TEST(ServeTcp, KillingAClientMidBatchDoesNotStallTheOtherTenant) {
  ServeOptions options;
  options.limits.max_batch = 8;
  options.limits.batch_window = std::chrono::milliseconds(100);
  DaemonFixture fixture(options);
  Rng rng(904);

  ClientOptions alice_options;
  alice_options.tenant = "alice";
  ServeClient alice(fixture.address(), alice_options);
  ClientOptions bob_options;
  bob_options.tenant = "bob";
  ServeClient bob(fixture.address(), bob_options);

  std::vector<wl::EnergyRequest> bob_requests;
  for (std::uint64_t t = 1; t <= 4; ++t) {
    alice.submit(make_request(100 + t, rng));
    bob_requests.push_back(make_request(t, rng));
    bob.submit(bob_requests.back());
  }
  alice.abort_socket();  // alice dies while her requests are co-batched

  std::size_t received = 0;
  while (bob.outstanding() > 0) {
    const wl::EnergyResult result = bob.retrieve();
    ASSERT_FALSE(result.failed);
    EXPECT_EQ(
        result.energy,
        small_solver()->energy(bob_requests[result.ticket - 1].config));
    ++received;
  }
  EXPECT_EQ(received, 4u);
}

TEST(ServeTcp, RestartedDaemonNeverReissuesACheckpointedSessionId) {
  char dir_template[] = "/tmp/wlsms-serve-XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string checkpoint_dir = dir_template;
  Rng rng(905);

  ServeOptions options;
  options.checkpoint_dir = checkpoint_dir;
  options.limits.batch_window = std::chrono::milliseconds(500);

  std::vector<wl::EnergyRequest> requests;
  std::uint64_t session = 0, token = 0;
  {
    DaemonFixture first(options);
    ClientOptions alice_options;
    alice_options.tenant = "alice";
    ServeClient alice(first.address(), alice_options);
    session = alice.session();
    token = alice.resume_token();
    for (std::uint64_t t = 1; t <= 2; ++t) {
      requests.push_back(make_request(t, rng));
      alice.submit(requests.back());
    }
    alice.abort_socket();  // die with in-flight work checkpointed
    ASSERT_TRUE(wait_for_sessions_gauge(0.0, std::chrono::seconds(5)));
  }  // daemon restarts; checkpoint files survive in checkpoint_dir

  {
    DaemonFixture second(options);
    // A fresh tenant on the restarted daemon must get a brand-new session
    // id. Without seeding next_session_ past the surviving checkpoints it
    // got alice's id, which first blocked her resume and then overwrote
    // her checkpoint (destroying her in-flight work) on disconnect.
    ClientOptions bob_options;
    bob_options.tenant = "bob";
    {
      ServeClient bob(second.address(), bob_options);
      EXPECT_GT(bob.session(), session);
      const wl::EnergyRequest request = make_request(7, rng);
      bob.submit(request);
      EXPECT_EQ(bob.retrieve().energy,
                small_solver()->energy(request.config));
    }

    ClientOptions resume_options;
    resume_options.tenant = "alice";
    resume_options.resume_session = session;
    resume_options.resume_token = token;
    ServeClient resumed(second.address(), resume_options);
    EXPECT_TRUE(resumed.resumed());
    EXPECT_EQ(resumed.session(), session);
    ASSERT_EQ(resumed.outstanding(), 2u);
    while (resumed.outstanding() > 0) {
      const wl::EnergyResult result = resumed.retrieve();
      ASSERT_FALSE(result.failed);
      EXPECT_EQ(result.energy,
                small_solver()->energy(requests[result.ticket - 1].config));
    }
  }
  remove_checkpoint_dir(checkpoint_dir);
}

TEST(ServeTcp, ClientDeathMidResumeReplayKeepsCheckpointRecoverable) {
  char dir_template[] = "/tmp/wlsms-serve-XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string checkpoint_dir = dir_template;
  Rng rng(906);

  // A checkpoint with far more undelivered results than the kernel socket
  // buffers can absorb, plus two pending requests.
  constexpr std::uint64_t kSession = 777;
  constexpr std::uint64_t kToken = 0x5EEDF00Dull;
  constexpr std::size_t kUndelivered = 20000;
  constexpr std::uint64_t kPendingBase = 999001;
  SessionCheckpoint checkpoint;
  checkpoint.session = kSession;
  checkpoint.resume_token = kToken;
  checkpoint.tenant = "replay";
  for (std::size_t k = 0; k < kUndelivered; ++k) {
    wl::EnergyResult result;
    result.ticket = k + 1;
    result.energy = static_cast<double>(k + 1);
    checkpoint.undelivered.push_back(result);
  }
  std::vector<wl::EnergyRequest> pending;
  for (std::uint64_t t = 0; t < 2; ++t) {
    pending.push_back(make_request(kPendingBase + t, rng));
    checkpoint.pending.push_back(pending.back());
  }
  {
    const std::vector<std::byte> bytes = encode_session_checkpoint(checkpoint);
    std::ofstream out(checkpoint_dir + "/session-777.wlsm", std::ios::binary);
    ASSERT_TRUE(out.good());
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  ServeOptions options;
  options.checkpoint_dir = checkpoint_dir;
  options.send_deadline = std::chrono::milliseconds(200);
  options.client_sndbuf = 8192;  // keeps the stalled replay's buffering small
  options.limits.max_pending = 512;
  options.limits.max_batch = 2;  // both pending solve as soon as both queue
  options.limits.batch_window = std::chrono::seconds(10);
  DaemonFixture fixture(options);

  // Victim: resumes the session but never reads a byte, so the replay
  // stalls against full socket buffers and trips the daemon's send deadline
  // mid-replay. The daemon must re-checkpoint the unsent remainder and the
  // pending requests — not clobber the file with a near-empty session.
  {
    net::Socket victim = net::connect_with_timeout(
        fixture.address(), std::chrono::milliseconds(2000));
    const int rcvbuf = 4096;
    (void)::setsockopt(victim.get(), SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                       sizeof(rcvbuf));
    ServeHello hello;
    hello.tenant = "replay";
    hello.resume_session = kSession;
    hello.resume_token = kToken;
    const std::vector<std::byte> frame =
        comm::frame_bytes({kTagServeHello, encode_serve_hello(hello)});
    ASSERT_TRUE(comm::write_all(
        victim.get(), frame.data(), frame.size(),
        comm::StreamClock::now() + std::chrono::seconds(2)));
    ASSERT_TRUE(wait_for_sessions_gauge(1.0, std::chrono::seconds(5)));
    ASSERT_TRUE(wait_for_sessions_gauge(0.0, std::chrono::seconds(10)));
  }

  ClientOptions resume_options;
  resume_options.tenant = "replay";
  resume_options.resume_session = kSession;
  resume_options.resume_token = kToken;
  ServeClient resumed(fixture.address(), resume_options);
  EXPECT_TRUE(resumed.resumed());
  // The unsent tail of the replay and both pending requests survived (the
  // victim absorbed at most a bounded prefix into its kernel buffers).
  ASSERT_GE(resumed.outstanding(), 3u);
  std::size_t replayed = 0, solved = 0;
  while (resumed.outstanding() > 0) {
    const wl::EnergyResult result = resumed.retrieve();
    ASSERT_FALSE(result.failed);
    if (result.ticket >= kPendingBase) {
      EXPECT_EQ(result.energy,
                small_solver()->energy(
                    pending[result.ticket - kPendingBase].config));
      ++solved;
    } else {
      EXPECT_EQ(result.energy, static_cast<double>(result.ticket));
      ++replayed;
    }
  }
  EXPECT_EQ(solved, 2u);
  EXPECT_GT(replayed, 0u);
  remove_checkpoint_dir(checkpoint_dir);
}

TEST(ServeTcp, TenantMetricSeriesAreCappedAtMaxTenantSeries) {
  ServeOptions options;
  options.max_tenant_series = 2;
  DaemonFixture fixture(options);
  Rng rng(907);

  for (const char* tenant : {"cap-a", "cap-b", "cap-c", "cap-d"}) {
    ClientOptions client_options;
    client_options.tenant = tenant;
    ServeClient client(fixture.address(), client_options);
    const wl::EnergyRequest request = make_request(1, rng);
    client.submit(request);
    EXPECT_EQ(client.retrieve().energy,
              small_solver()->energy(request.config));
  }

  // The daemon increments .results after the socket write, so the last
  // retrieve can race the counter; wait for it to settle.
  obs::Counter& other_results =
      obs::Registry::instance().counter("serve.tenant.other.results");
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (other_results.value() < 2 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));

  // Tenant names arrive unauthenticated, so only the first
  // max_tenant_series distinct names get their own metric series; the rest
  // fold into "other" and cannot grow the registry without bound.
  const obs::MetricsSnapshot snapshot = obs::Registry::instance().snapshot();
  EXPECT_EQ(snapshot.counters.at("serve.tenant.cap-a.sessions"), 1u);
  EXPECT_EQ(snapshot.counters.at("serve.tenant.cap-b.sessions"), 1u);
  EXPECT_EQ(snapshot.counters.count("serve.tenant.cap-c.sessions"), 0u);
  EXPECT_EQ(snapshot.counters.count("serve.tenant.cap-d.sessions"), 0u);
  EXPECT_EQ(snapshot.counters.at("serve.tenant.other.sessions"), 2u);
  EXPECT_EQ(snapshot.counters.at("serve.tenant.other.results"), 2u);
}

TEST(ServeTcp, MultiClientChaosSoakLeaksNothingAndStallsNoOne) {
  ServeOptions options;
  options.limits.max_batch = 8;
  options.limits.max_pending = 128;
  options.limits.batch_window = std::chrono::milliseconds(5);
  DaemonFixture fixture(options);

  std::atomic<bool> chaos_failed{false};
  std::vector<std::thread> chaos;
  for (int c = 0; c < 3; ++c) {
    chaos.emplace_back([&fixture, &chaos_failed, c] {
      try {
        Rng rng(910 + static_cast<std::uint64_t>(c));
        for (int iteration = 0; iteration < 3; ++iteration) {
          ClientOptions client_options;
          client_options.tenant = "chaos" + std::to_string(c);
          ServeClient client(fixture.address(), client_options);
          const std::size_t n_submit = 1 + rng.uniform_index(3);
          for (std::size_t t = 0; t < n_submit; ++t)
            client.submit(make_request(t + 1, rng));
          if (rng.uniform_index(2) == 0) {
            client.abort_socket();  // vanish mid-flight
          } else {
            while (client.outstanding() > 0) (void)client.retrieve();
          }
        }
      } catch (const std::exception&) {
        chaos_failed = true;
      }
    });
  }

  // The stable tenant keeps computing correct energies throughout.
  Rng rng(909);
  ClientOptions stable_options;
  stable_options.tenant = "stable";
  {
    ServeClient stable(fixture.address(), stable_options);
    for (int round = 0; round < 3; ++round) {
      std::vector<wl::EnergyRequest> requests;
      for (std::uint64_t t = 1; t <= 4; ++t) {
        requests.push_back(make_request(t, rng));
        stable.submit(requests.back());
      }
      while (stable.outstanding() > 0) {
        const wl::EnergyResult result = stable.retrieve();
        ASSERT_FALSE(result.failed);
        EXPECT_EQ(
            result.energy,
            small_solver()->energy(requests[result.ticket - 1].config));
      }
    }
  }
  for (std::thread& t : chaos) t.join();
  EXPECT_FALSE(chaos_failed.load());

  // Every connection is gone; the daemon must not leak a single session.
  EXPECT_TRUE(wait_for_sessions_gauge(0.0, std::chrono::seconds(5)));
}

}  // namespace
}  // namespace wlsms::serve
