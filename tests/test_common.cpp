// Tests for the small common utilities: units, contracts, logging.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/units.hpp"

namespace wlsms {
namespace {

TEST(Units, BoltzmannConstantMagnitude) {
  // k_B = 8.617333e-5 eV/K / 13.605693 eV/Ry.
  EXPECT_NEAR(units::k_boltzmann_ry, 8.617333e-5 / 13.605693, 1e-9);
}

TEST(Units, BetaFromKelvinIsReciprocal) {
  const double t = 1234.0;
  EXPECT_DOUBLE_EQ(units::beta_from_kelvin(t),
                   1.0 / (units::k_boltzmann_ry * t));
}

TEST(Units, PaperConstantsRecorded) {
  EXPECT_DOUBLE_EQ(units::fe_lattice_parameter_a0, 5.42);
  EXPECT_DOUBLE_EQ(units::fe_liz_radius_a0, 11.5);
  EXPECT_DOUBLE_EQ(units::fe_curie_experiment_k, 1050.0);
}

TEST(Units, RoomTemperatureEnergyScale) {
  // k_B * 300 K ~ 1.9e-3 Ry ~ 25.9 meV: the sanity anchor for every
  // temperature conversion in the library.
  EXPECT_NEAR(units::k_boltzmann_ry * 300.0 * units::ry_in_ev, 0.02585, 1e-4);
}

TEST(Contracts, ExpectsThrowsWithLocation) {
  try {
    WLSMS_EXPECTS(1 == 2);
    FAIL() << "should have thrown";
  } catch (const ContractError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Contracts, EnsuresThrowsPostconditionMessage) {
  try {
    WLSMS_ENSURES(false);
    FAIL() << "should have thrown";
  } catch (const ContractError& error) {
    EXPECT_NE(std::string(error.what()).find("postcondition"),
              std::string::npos);
  }
}

TEST(Contracts, PassingConditionsAreSilent) {
  EXPECT_NO_THROW(WLSMS_EXPECTS(2 + 2 == 4));
  EXPECT_NO_THROW(WLSMS_ENSURES(true));
}

TEST(Logging, LevelRoundTrip) {
  const LogLevel previous = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
  set_log_level(previous);
}

TEST(Logging, EmitBelowThresholdIsNoOp) {
  const LogLevel previous = log_level();
  set_log_level(LogLevel::kOff);
  // Nothing to assert on stderr portably; the contract is "does not crash"
  // and the level gate is what keeps hot loops cheap.
  log_info("suppressed ", 42);
  log_warn("suppressed too");
  log_debug("and this");
  set_log_level(previous);
}

TEST(Logging, ConcatFormatsMixedArguments) {
  EXPECT_EQ(detail::concat("x=", 3, ", y=", 2.5), "x=3, y=2.5");
  EXPECT_EQ(detail::concat(), "");
}

}  // namespace
}  // namespace wlsms
