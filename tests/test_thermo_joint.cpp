// Tests for joint-DOS thermodynamics: constrained free energies, switching
// barriers, magnetization curves.
#include "thermo/joint_observables.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "common/units.hpp"

namespace wlsms::thermo {
namespace {

// Builds a synthetic joint DOS with ln g(E, M) = ln gE(E) + ln gM(M) where
// ln gM has a double-well shape: high density at |M| ~ m0, low at M ~ 0.
wl::JointDos synthetic_double_well(double well_depth) {
  wl::JointDosConfig config;
  config.e_min = 0.0;
  config.e_max = 1.0;
  config.e_bins = 20;
  config.m_min = -1.0;
  config.m_max = 1.0;
  config.m_bins = 21;
  wl::JointDos dos(config);
  for (std::size_t be = 0; be < config.e_bins; ++be) {
    for (std::size_t bm = 0; bm < config.m_bins; ++bm) {
      const double m = dos.m_center(bm);
      // One "visit" per cell with the desired ln g as gamma: many states at
      // |M| ~ 1 (the wells), few near M = 0 (the barrier).
      dos.visit(dos.e_center(be), m, well_depth * m * m);
    }
  }
  return dos;
}

TEST(JointObservables, ProfileCoversVisitedMagnetizations) {
  const wl::JointDos dos = synthetic_double_well(3.0);
  const FreeEnergyProfile profile = free_energy_profile(dos, 1000.0);
  EXPECT_EQ(profile.m.size(), 21u);
  EXPECT_EQ(profile.f.size(), 21u);
  // Normalized: the minimum is exactly zero.
  double min_f = 1e300;
  for (double f : profile.f) min_f = std::min(min_f, f);
  EXPECT_NEAR(min_f, 0.0, 1e-15);
}

TEST(JointObservables, DoubleWellProfileHasCentralMaximum) {
  const wl::JointDos dos = synthetic_double_well(4.0);
  const FreeEnergyProfile profile = free_energy_profile(dos, 800.0);
  // F(M=0) is higher than F at the outermost wells.
  double f_center = 0.0;
  double f_edge = 1e300;
  for (std::size_t i = 0; i < profile.m.size(); ++i) {
    if (std::abs(profile.m[i]) < 0.06) f_center = profile.f[i];
    if (std::abs(profile.m[i]) > 0.9)
      f_edge = std::min(f_edge, profile.f[i]);
  }
  EXPECT_GT(f_center, f_edge);
}

TEST(JointObservables, BarrierGrowsWithWellDepth) {
  const double b_shallow = switching_barrier(synthetic_double_well(2.0), 700.0);
  const double b_deep = switching_barrier(synthetic_double_well(6.0), 700.0);
  EXPECT_GT(b_shallow, 0.0);
  EXPECT_GT(b_deep, b_shallow);
}

TEST(JointObservables, BarrierScalesLinearlyInTForEntropicWell) {
  // Our synthetic ln g is temperature-independent, so
  // F(0) - F(m0) = kT * depth: the barrier is proportional to T.
  const wl::JointDos dos = synthetic_double_well(4.0);
  const double b1 = switching_barrier(dos, 400.0);
  const double b2 = switching_barrier(dos, 800.0);
  EXPECT_NEAR(b2 / b1, 2.0, 0.05);
}

TEST(JointObservables, MeanAbsMagnetizationWeightsWells) {
  // Deep double well: thermal average sits near the well positions.
  const wl::JointDos dos = synthetic_double_well(8.0);
  const double m = mean_abs_magnetization(dos, 500.0);
  EXPECT_GT(m, 0.7);
  // A flat landscape averages |M| over the uniform measure (= 1/2 on the
  // grid of bin centres).
  const wl::JointDos flat = synthetic_double_well(0.0);
  EXPECT_NEAR(mean_abs_magnetization(flat, 500.0), 0.5, 0.03);
}

TEST(JointObservables, MagnetizationCurveShape) {
  const wl::JointDos dos = synthetic_double_well(5.0);
  const auto curve = magnetization_curve(dos, 200.0, 2000.0, 10);
  ASSERT_EQ(curve.size(), 10u);
  EXPECT_DOUBLE_EQ(curve.front().first, 200.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 2000.0);
  // With a T-independent ln g the weighting of M by the E-integral changes
  // only weakly; every point stays in [0, 1].
  for (const auto& [t, m] : curve) {
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0);
  }
}

TEST(JointObservables, EnergyDependenceWeightsColdProfile) {
  // Put the low-M cells at *low energy*: cooling must favour them.
  wl::JointDosConfig config;
  config.e_min = 0.0;
  config.e_max = 1.0;
  config.e_bins = 20;
  config.m_min = -1.0;
  config.m_max = 1.0;
  config.m_bins = 11;
  wl::JointDos dos(config);
  for (std::size_t be = 0; be < config.e_bins; ++be)
    for (std::size_t bm = 0; bm < config.m_bins; ++bm) {
      const double m = dos.m_center(bm);
      // States with small |M| exist only at low E.
      if (std::abs(m) < 0.3 && dos.e_center(be) > 0.3) continue;
      dos.visit(dos.e_center(be), m, 1.0);
    }
  const double m_cold = mean_abs_magnetization(dos, 3000.0);
  const double m_hot = mean_abs_magnetization(dos, 300000.0);
  EXPECT_LT(m_cold, m_hot);
}

TEST(JointObservables, InvalidTemperatureThrows) {
  const wl::JointDos dos = synthetic_double_well(1.0);
  EXPECT_THROW(free_energy_profile(dos, 0.0), ContractError);
  EXPECT_THROW(mean_abs_magnetization(dos, -1.0), ContractError);
  EXPECT_THROW(magnetization_curve(dos, 500.0, 100.0, 5), ContractError);
}

}  // namespace
}  // namespace wlsms::thermo
