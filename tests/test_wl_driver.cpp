// Tests for the asynchronous master-slave driver (paper Alg. 1 / Fig. 3):
// out-of-order tolerance and node-loss resilience.
#include "wl/driver.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "common/units.hpp"
#include "lattice/cluster.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"
#include "parallel/failure.hpp"
#include "thermo/observables.hpp"
#include "wl/energy_service.hpp"

namespace wlsms::wl {
namespace {

HeisenbergEnergy fe16_energy() {
  std::vector<double> j = lsms::fe_reference_exchange();
  for (double& v : j) v *= lsms::fe_exchange_energy_scale;
  return HeisenbergEnergy(
      heisenberg::HeisenbergModel(lattice::make_fe_supercell(2), j));
}

WangLandauConfig driver_config(const HeisenbergEnergy& energy) {
  Rng rng(5);
  WangLandauConfig config;
  config.grid =
      thermal_window(energy, energy.model().ferromagnetic_energy(), 150.0, rng);
  config.n_walkers = 8;
  config.check_interval = 5000;
  config.flatness = 0.8;
  config.max_iteration_steps = 1000000;
  config.max_steps = 60000000;
  return config;
}

double converged_u900(EnergyService& service, const WangLandauConfig& config,
                      std::uint64_t seed, DriverStats* stats_out = nullptr) {
  WlDriver driver(16, service, config,
                  std::make_unique<HalvingSchedule>(1.0, 1e-5), Rng(seed));
  const DriverStats& stats = driver.run();
  if (stats_out) *stats_out = stats;
  const thermo::DosTable table = thermo::dos_table(driver.dos());
  return thermo::observables_at(table, 900.0).internal_energy;
}

TEST(WlDriver, ConvergesWithSynchronousService) {
  HeisenbergEnergy energy = fe16_energy();
  const WangLandauConfig config = driver_config(energy);
  SynchronousEnergyService service(energy);
  DriverStats stats;
  const double u = converged_u900(service, config, 1, &stats);
  EXPECT_GT(stats.total_steps, 100000u);
  EXPECT_EQ(service.outstanding(), 0u);  // drained on exit
  // Physical band for the 16-atom surrogate at 900 K (Metropolis: -0.100).
  EXPECT_NEAR(u, -0.100, 0.012);
}

TEST(WlDriver, OutOfOrderResultsGiveSamePhysics) {
  // §II-C: results "might arrive in an order that differs from the one in
  // which they were submitted ... this has no negative effect on the
  // convergence of the method."
  HeisenbergEnergy energy = fe16_energy();
  const WangLandauConfig config = driver_config(energy);
  ReorderingEnergyService service(energy, Rng(77));
  const double u = converged_u900(service, config, 2);
  EXPECT_NEAR(u, -0.100, 0.012);
}

TEST(WlDriver, SurvivesInjectedNodeFailures) {
  // §V outlook: resilience to the loss of processing nodes. 2 % of all
  // submissions are lost; the driver must resubmit them and still converge
  // to the right physics.
  HeisenbergEnergy energy = fe16_energy();
  const WangLandauConfig config = driver_config(energy);
  SynchronousEnergyService inner(energy);
  parallel::FailureInjectingService service(inner, 0.02, Rng(5));
  DriverStats stats;
  const double u = converged_u900(service, config, 3, &stats);
  EXPECT_GT(stats.resubmissions, 0u);
  // Every resubmission answers a retrieved failure notice; the only notices
  // *not* resubmitted are those drained after convergence, at most one per
  // walker (one request in flight each).
  EXPECT_LE(stats.resubmissions, service.injected_failures());
  EXPECT_LE(service.injected_failures() - stats.resubmissions,
            config.n_walkers);
  EXPECT_EQ(service.outstanding(), 0u);
  EXPECT_NEAR(u, -0.100, 0.012);
}

TEST(WlDriver, ConvergesToExactDosUnderHeavyFailureRate) {
  // Regression for the outstanding() accounting of the failure decorator: a
  // lost submission must stay visible through outstanding() until its
  // failure notice is retrieved. Before the fix, outstanding() forwarded to
  // the inner service only, so the driver's retrieve/drain loops could stop
  // with notices — i.e. resubmittable work — still queued, which at a 20 %
  // loss rate starves walkers and stalls or corrupts the run. With correct
  // accounting the driver converges to the exactly known single-bond
  // physics even when every fifth submission dies.
  const auto structure = lattice::make_cubic_cluster(
      lattice::CubicLattice::kSimpleCubic, 1.0, 2, 1, 1);
  const HeisenbergEnergy energy(
      heisenberg::HeisenbergModel(structure, {1.0}));

  WangLandauConfig config;
  config.grid = {-1.02, 1.02, 102, 0.005};
  config.n_walkers = 4;
  config.check_interval = 2000;
  config.flatness = 0.8;
  config.max_iteration_steps = 300000;
  config.max_steps = 40000000;

  SynchronousEnergyService inner(energy);
  parallel::FailureInjectingService service(inner, 0.2, Rng(41));
  WlDriver driver(2, service, config,
                  std::make_unique<HalvingSchedule>(1.0, 1e-5), Rng(42));
  const DriverStats& stats = driver.run();
  EXPECT_TRUE(driver.schedule().converged());
  EXPECT_GT(stats.resubmissions, stats.total_steps / 10);  // ~20 % were lost
  EXPECT_EQ(service.outstanding(), 0u);

  const thermo::DosTable table = thermo::dos_table(driver.dos());
  const double langevin_1 = 1.0 / std::tanh(1.0) - 1.0;
  const double t = 1.0 / units::k_boltzmann_ry;
  EXPECT_NEAR(thermo::observables_at(table, t).internal_energy, -langevin_1,
              0.03);
}

TEST(WlDriver, StepCountsExcludeSeedingAndResubmissions) {
  HeisenbergEnergy energy = fe16_energy();
  WangLandauConfig config = driver_config(energy);
  config.max_steps = 1000;
  SynchronousEnergyService service(energy);
  WlDriver driver(16, service, config,
                  std::make_unique<HalvingSchedule>(1.0, 1e-8), Rng(4));
  const DriverStats& stats = driver.run();
  EXPECT_GE(stats.total_steps, 1000u);
  EXPECT_LE(stats.total_steps, 1000u + config.n_walkers);
}

TEST(WlDriver, AllWalkersParticipate) {
  // With a synchronous FIFO service every walker's requests interleave;
  // acceptance bookkeeping must stay within totals.
  HeisenbergEnergy energy = fe16_energy();
  WangLandauConfig config = driver_config(energy);
  config.max_steps = 20000;
  SynchronousEnergyService service(energy);
  WlDriver driver(16, service, config,
                  std::make_unique<HalvingSchedule>(1.0, 1e-8), Rng(6));
  const DriverStats& stats = driver.run();
  EXPECT_LE(stats.accepted_steps, stats.total_steps);
  EXPECT_LE(stats.out_of_range, stats.total_steps);
  EXPECT_EQ(driver.n_walkers(), 8u);
}

TEST(EnergyService, SynchronousIsFifo) {
  HeisenbergEnergy energy = fe16_energy();
  SynchronousEnergyService service(energy);
  Rng rng(1);
  for (std::uint64_t t = 0; t < 5; ++t)
    service.submit({t % 2, t, spin::MomentConfiguration::random(16, rng)});
  EXPECT_EQ(service.outstanding(), 5u);
  for (std::uint64_t t = 0; t < 5; ++t) {
    const EnergyResult result = service.retrieve();
    EXPECT_EQ(result.ticket, t);
    EXPECT_FALSE(result.failed);
  }
  EXPECT_EQ(service.outstanding(), 0u);
}

TEST(EnergyService, ReorderingPermutesResults) {
  HeisenbergEnergy energy = fe16_energy();
  ReorderingEnergyService service(energy, Rng(3));
  Rng rng(2);
  constexpr int kBatch = 64;
  for (std::uint64_t t = 0; t < kBatch; ++t)
    service.submit({0, t, spin::MomentConfiguration::random(16, rng)});
  bool out_of_order = false;
  std::uint64_t previous = 0;
  for (int k = 0; k < kBatch; ++k) {
    const EnergyResult result = service.retrieve();
    if (k > 0 && result.ticket < previous) out_of_order = true;
    previous = result.ticket;
  }
  EXPECT_TRUE(out_of_order);
}

TEST(EnergyService, ReorderedEnergiesAreStillCorrect) {
  HeisenbergEnergy energy = fe16_energy();
  ReorderingEnergyService service(energy, Rng(9));
  Rng rng(8);
  std::vector<spin::MomentConfiguration> configs;
  for (std::uint64_t t = 0; t < 16; ++t) {
    configs.push_back(spin::MomentConfiguration::random(16, rng));
    service.submit({0, t, configs.back()});
  }
  for (int k = 0; k < 16; ++k) {
    const EnergyResult result = service.retrieve();
    EXPECT_NEAR(result.energy, energy.total_energy(configs[result.ticket]),
                1e-12);
  }
}

TEST(EnergyService, RetrieveWithoutOutstandingThrows) {
  HeisenbergEnergy energy = fe16_energy();
  SynchronousEnergyService service(energy);
  // Every EnergyService throws a wlsms::Error on an empty retrieve; the
  // concrete type here is the contract violation.
  EXPECT_THROW(service.retrieve(), ContractError);
  EXPECT_THROW(service.retrieve(), Error);
}

TEST(EnergyService, ReorderingRetrieveWithoutOutstandingThrows) {
  HeisenbergEnergy energy = fe16_energy();
  ReorderingEnergyService service(energy, Rng(5));
  EXPECT_THROW(service.retrieve(), Error);
  // Draining exactly what was submitted re-arms the contract.
  Rng rng(6);
  service.submit({0, 1, spin::MomentConfiguration::random(16, rng)});
  (void)service.retrieve();
  EXPECT_THROW(service.retrieve(), Error);
}

}  // namespace
}  // namespace wlsms::wl
