// Tests for the modification-factor schedules.
#include "wl/schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace wlsms::wl {
namespace {

TEST(HalvingSchedule, StartsAtInitialGamma) {
  const HalvingSchedule s(1.0, 1e-6);
  EXPECT_DOUBLE_EQ(s.gamma(), 1.0);
  EXPECT_FALSE(s.converged());
}

TEST(HalvingSchedule, HalvesOnFlatHistogram) {
  HalvingSchedule s(1.0, 1e-6);
  EXPECT_DOUBLE_EQ(s.on_flat_histogram(100), 0.5);
  EXPECT_DOUBLE_EQ(s.on_flat_histogram(200), 0.25);
  EXPECT_EQ(s.iterations(), 2u);
}

TEST(HalvingSchedule, StepsDoNotChangeGamma) {
  HalvingSchedule s(1.0, 1e-6);
  for (std::uint64_t t = 1; t < 1000; ++t) EXPECT_DOUBLE_EQ(s.on_step(t), 1.0);
}

TEST(HalvingSchedule, ConvergesAtFloor) {
  HalvingSchedule s(1.0, 1e-6);
  int halvings = 0;
  while (!s.converged()) {
    s.on_flat_histogram(halvings * 100);
    ++halvings;
    ASSERT_LT(halvings, 64);
  }
  // 2^-20 ~ 9.5e-7 <= 1e-6.
  EXPECT_EQ(halvings, 20);
}

TEST(HalvingSchedule, CloneIsIndependent) {
  HalvingSchedule s(1.0, 1e-6);
  s.on_flat_histogram(10);
  auto clone = s.clone();
  s.on_flat_histogram(20);
  EXPECT_DOUBLE_EQ(clone->gamma(), 0.5);
  EXPECT_DOUBLE_EQ(s.gamma(), 0.25);
}

TEST(HalvingSchedule, InvalidBoundsThrow) {
  EXPECT_THROW(HalvingSchedule(1e-7, 1e-6), ContractError);
  EXPECT_THROW(HalvingSchedule(1.0, 0.0), ContractError);
}

TEST(OneOverTSchedule, BehavesLikeHalvingInitially) {
  OneOverTSchedule s(100, 1.0, 1e-8);
  EXPECT_FALSE(s.in_one_over_t_phase());
  // First flat event at t = 5000 steps: bins/t = 0.02 < gamma = 0.5, so the
  // schedule stays in the halving phase (1/t would be *larger* noise
  // reduction than the halving provides only much later).
  EXPECT_DOUBLE_EQ(s.on_flat_histogram(5000), 0.5);
  EXPECT_FALSE(s.in_one_over_t_phase());
}

TEST(OneOverTSchedule, SwitchesWhenHalvingCrossesOneOverT) {
  OneOverTSchedule s(100, 1.0, 1e-8);
  // At t = 1000, bins/t = 0.1; halving to 0.5 then 0.25... crosses when
  // gamma < 0.1.
  s.on_flat_histogram(1000);  // 0.5
  s.on_flat_histogram(1000);  // 0.25
  s.on_flat_histogram(1000);  // 0.125
  EXPECT_FALSE(s.in_one_over_t_phase());
  s.on_flat_histogram(2000);  // 0.0625 < 100/2000 = 0.05? no: 0.0625 > 0.05
  EXPECT_FALSE(s.in_one_over_t_phase());
  s.on_flat_histogram(10000);  // 0.03125 < 100/10000 = 0.01? no: 0.031 > 0.01
  EXPECT_FALSE(s.in_one_over_t_phase());
  s.on_flat_histogram(1000);  // 0.015625 < 100/1000 = 0.1: switches
  EXPECT_TRUE(s.in_one_over_t_phase());
}

TEST(OneOverTSchedule, DecaysAsOneOverTAfterSwitch) {
  OneOverTSchedule s(100, 1.0, 1e-8);
  // Halve until gamma = 2^-20 < bins/t = 1e-4: the switch fires.
  for (int k = 0; k < 20; ++k) s.on_flat_histogram(1000000);
  ASSERT_TRUE(s.in_one_over_t_phase());
  const double g1 = s.on_step(10000000);
  const double g2 = s.on_step(20000000);
  EXPECT_NEAR(g1, 100.0 / 1e7, 1e-12);
  EXPECT_NEAR(g2, 100.0 / 2e7, 1e-12);
}

TEST(OneOverTSchedule, GammaNeverIncreases) {
  OneOverTSchedule s(50, 1.0, 1e-10);
  double previous = s.gamma();
  for (std::uint64_t t = 1; t < 100000; t += 997) {
    const double g = s.on_step(t);
    EXPECT_LE(g, previous + 1e-15);
    previous = g;
    if (t % 5 == 0) {
      s.on_flat_histogram(t);
      EXPECT_LE(s.gamma(), previous + 1e-15);
      previous = s.gamma();
    }
  }
}

TEST(OneOverTSchedule, ConvergesAtFloor) {
  OneOverTSchedule s(10, 1.0, 1e-4);
  for (int k = 0; k < 20; ++k) s.on_flat_histogram(100);
  s.on_step(200000);  // 10/2e5 = 5e-5 <= 1e-4
  EXPECT_TRUE(s.converged());
}

TEST(OneOverTSchedule, InvalidArgumentsThrow) {
  EXPECT_THROW(OneOverTSchedule(0, 1.0, 1e-6), ContractError);
  EXPECT_THROW(OneOverTSchedule(10, 1e-8, 1e-6), ContractError);
}

}  // namespace
}  // namespace wlsms::wl
