// Parameterized geometry sweeps: properties that must hold for every cell
// size and lattice type the library supports.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "common/units.hpp"
#include "lattice/shells.hpp"
#include "lattice/structure.hpp"

namespace wlsms::lattice {
namespace {

class SupercellSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SupercellSizes, BccAtomCountIsTwoNCubed) {
  const std::size_t n = GetParam();
  EXPECT_EQ(make_fe_supercell(n).size(), 2 * n * n * n);
}

TEST_P(SupercellSizes, EveryAtomHasEightNearestNeighbors) {
  const std::size_t n = GetParam();
  const Structure cell = make_fe_supercell(n);
  const double nn_cutoff =
      units::fe_lattice_parameter_a0 * std::sqrt(3.0) / 2.0 * 1.01;
  for (std::size_t i = 0; i < cell.size(); i += std::max<std::size_t>(
           1, cell.size() / 8))
    EXPECT_EQ(cell.neighbors_within(i, nn_cutoff).size(), 8u);
}

TEST_P(SupercellSizes, PaperLizHolds65AtomsAtEverySize) {
  // The LIZ census is independent of the supercell (images compensate).
  const std::size_t n = GetParam();
  const Structure cell = make_fe_supercell(n);
  EXPECT_EQ(cell.neighbors_within(0, units::fe_liz_radius_a0).size() + 1,
            65u);
}

TEST_P(SupercellSizes, DisplacementIsAntisymmetric) {
  const std::size_t n = GetParam();
  const Structure cell = make_fe_supercell(n);
  const std::size_t j = cell.size() / 2;
  const Vec3 dij = cell.displacement(0, j);
  const Vec3 dji = cell.displacement(j, 0);
  EXPECT_NEAR((dij + dji).norm(), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SupercellSizes, ::testing::Values(2, 3, 4, 5));

struct LatticeCase {
  CubicLattice lattice;
  std::size_t first_shell;
  double first_radius_over_a;
};

class CubicLattices : public ::testing::TestWithParam<LatticeCase> {};

TEST_P(CubicLattices, FirstShellGeometry) {
  const LatticeCase c = GetParam();
  const Structure cell = make_supercell(c.lattice, 2.0, 3, 3, 3);
  const auto shells = neighbor_shells(cell, 0, 2.0 * 1.8);
  ASSERT_FALSE(shells.empty());
  EXPECT_EQ(shells[0].coordination(), c.first_shell);
  EXPECT_NEAR(shells[0].radius, 2.0 * c.first_radius_over_a, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Types, CubicLattices,
    ::testing::Values(LatticeCase{CubicLattice::kSimpleCubic, 6, 1.0},
                      LatticeCase{CubicLattice::kBcc, 8,
                                  std::sqrt(3.0) / 2.0},
                      LatticeCase{CubicLattice::kFcc, 12,
                                  std::sqrt(2.0) / 2.0}));

TEST(LatticeSweep, ShellRadiiAreStrictlyIncreasing) {
  const Structure cell = make_fe_supercell(3);
  const auto shells = neighbor_shells(cell, 0, 14.0);
  for (std::size_t s = 1; s < shells.size(); ++s)
    EXPECT_GT(shells[s].radius, shells[s - 1].radius);
}

TEST(LatticeSweep, NeighborCountsGrowMonotonicallyWithCutoff) {
  const Structure cell = make_fe_supercell(3);
  std::size_t previous = 0;
  for (double cutoff = 4.0; cutoff < 13.0; cutoff += 1.5) {
    const std::size_t count = cell.neighbors_within(0, cutoff).size();
    EXPECT_GE(count, previous);
    previous = count;
  }
}

}  // namespace
}  // namespace wlsms::lattice
