// The tentpole acceptance property: N walkers' energies computed through
// the batching scheduler are IDENTICAL (==, not approximately) to computing
// each alone through SynchronousEnergyService — at batch sizes 1, 2, 7, and
// 64, both in-process ("thread transport": the scheduler driven directly)
// and over a real TCP daemon with a ServeClient.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/scheduler.hpp"

namespace wlsms::serve {
namespace {

constexpr std::size_t kBatchSizes[] = {1, 2, 7, 64};

std::shared_ptr<const lsms::LsmsSolver> small_solver() {
  static const auto solver = std::make_shared<const lsms::LsmsSolver>(
      lattice::make_fe_supercell(2), lsms::fe_lsms_parameters_fast());
  return solver;
}

std::vector<wl::EnergyRequest> make_requests(std::size_t count,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<wl::EnergyRequest> requests;
  requests.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    wl::EnergyRequest request;
    request.walker = k;  // every request its own walker: N independent walkers
    request.ticket = k + 1;
    request.config =
        spin::MomentConfiguration::random(small_solver()->n_atoms(), rng);
    requests.push_back(std::move(request));
  }
  return requests;
}

/// Per-walker reference energies through the synchronous service.
std::vector<double> reference_energies(
    const std::vector<wl::EnergyRequest>& requests) {
  const wl::LsmsEnergy energy(small_solver());
  wl::SynchronousEnergyService sync(energy);
  std::vector<double> energies(requests.size());
  for (const wl::EnergyRequest& request : requests) {
    sync.submit(request);
    const wl::EnergyResult result = sync.retrieve();
    energies[result.ticket - 1] = result.energy;
  }
  return energies;
}

TEST(ServeParity, SchedulerMatchesSynchronousAtEveryBatchSize) {
  for (const std::size_t batch_size : kBatchSizes) {
    ServeLimits limits;
    limits.max_pending = batch_size + 8;
    limits.max_session_outstanding = batch_size;
    limits.max_batch = batch_size;
    BatchScheduler scheduler(small_solver(), limits);

    const std::vector<wl::EnergyRequest> requests =
        make_requests(batch_size, 700 + batch_size);
    const std::vector<double> expected = reference_energies(requests);

    for (const wl::EnergyRequest& request : requests)
      ASSERT_EQ(scheduler.submit(1, request),
                BatchScheduler::Admission::kAccepted);
    std::vector<BatchScheduler::Completed> completed;
    while (scheduler.pending() > 0) scheduler.run_next_batch(completed);

    ASSERT_EQ(completed.size(), batch_size);
    for (const BatchScheduler::Completed& done : completed) {
      ASSERT_FALSE(done.result.failed);
      EXPECT_EQ(done.result.energy, expected[done.result.ticket - 1])
          << "batch size " << batch_size << ", ticket " << done.result.ticket;
    }
    if (batch_size > 1)
      EXPECT_EQ(scheduler.stats().batched_requests, batch_size);
    else
      EXPECT_EQ(scheduler.stats().singleton_requests, 1u);
  }
}

TEST(ServeParity, TcpDaemonMatchesSynchronousAtEveryBatchSize) {
  for (const std::size_t batch_size : kBatchSizes) {
    ServeOptions options;
    options.listen = "127.0.0.1:0";
    options.limits.max_pending = batch_size + 8;
    options.limits.max_session_outstanding = batch_size;
    options.limits.max_batch = batch_size;
    options.limits.batch_window = std::chrono::milliseconds(200);

    Daemon daemon(small_solver(), options);
    std::thread server([&daemon] { daemon.run(); });

    const std::vector<wl::EnergyRequest> requests =
        make_requests(batch_size, 800 + batch_size);
    const std::vector<double> expected = reference_energies(requests);

    {
      ClientOptions client_options;
      client_options.tenant = "parity";
      ServeClient client(daemon.address(), client_options);
      EXPECT_EQ(client.n_atoms(), small_solver()->n_atoms());
      for (const wl::EnergyRequest& request : requests)
        client.submit(request);
      std::size_t received = 0;
      while (client.outstanding() > 0) {
        const wl::EnergyResult result = client.retrieve();
        ASSERT_FALSE(result.failed) << "ticket " << result.ticket;
        EXPECT_EQ(result.energy, expected[result.ticket - 1])
            << "batch size " << batch_size << ", ticket " << result.ticket;
        ++received;
      }
      EXPECT_EQ(received, batch_size);
    }

    daemon.stop();
    server.join();
    if (batch_size > 1)
      EXPECT_EQ(daemon.scheduler_stats().batched_requests, batch_size);
  }
}

}  // namespace
}  // namespace wlsms::serve
