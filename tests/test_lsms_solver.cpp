// Physics and consistency tests for the LSMS energy engine.
#include "lsms/solver.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "linalg/lu.hpp"
#include "lsms/fe_parameters.hpp"
#include "perf/flops.hpp"
#include "spin/rotation.hpp"

namespace wlsms::lsms {
namespace {

LsmsSolver fast_solver(std::size_t n_cells = 2) {
  return LsmsSolver(lattice::make_fe_supercell(n_cells),
                    fe_lsms_parameters_fast());
}

// Applies a global SO(3) rotation (angle about axis) to every moment.
spin::MomentConfiguration rotate_all(const spin::MomentConfiguration& config,
                                     const Vec3& axis_raw, double angle) {
  const Vec3 axis = axis_raw.normalized();
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  std::vector<Vec3> dirs;
  dirs.reserve(config.size());
  for (std::size_t i = 0; i < config.size(); ++i) {
    const Vec3& v = config[i];
    // Rodrigues' formula.
    dirs.push_back(v * c + axis.cross(v) * s + axis * (axis.dot(v) * (1 - c)));
  }
  return spin::MomentConfiguration::from_directions(dirs);
}

TEST(LsmsSolver, EnergyIsGlobalRotationInvariant) {
  // The frozen-potential functional depends only on relative moment
  // orientations; a global rotation must leave E unchanged. This is the
  // fundamental symmetry of the method (no spin-orbit terms).
  const LsmsSolver solver = fast_solver();
  Rng rng(1);
  const auto config = spin::MomentConfiguration::random(16, rng);
  const double e0 = solver.energy(config);
  for (int k = 0; k < 3; ++k) {
    const Vec3 axis = rng.unit_vector();
    const double angle = rng.uniform(0.1, 3.0);
    const double e_rot = solver.energy(rotate_all(config, axis, angle));
    EXPECT_NEAR(e_rot, e0, 1e-9 * std::abs(e0) + 1e-12);
  }
}

TEST(LsmsSolver, FerromagneticEnergyIndependentOfDirection) {
  const LsmsSolver solver = fast_solver();
  const double e_z = solver.energy(spin::MomentConfiguration::ferromagnetic(16));
  const double e_x = solver.energy(spin::MomentConfiguration::from_directions(
      std::vector<Vec3>(16, Vec3{1, 0, 0})));
  const double e_tilt = solver.energy(spin::MomentConfiguration::from_directions(
      std::vector<Vec3>(16, Vec3{1, 1, 1})));
  EXPECT_NEAR(e_x, e_z, 1e-9 * std::abs(e_z));
  EXPECT_NEAR(e_tilt, e_z, 1e-9 * std::abs(e_z));
}

TEST(LsmsSolver, FerromagneticBelowDisorderedBelowStaggered) {
  // The calibrated Fe substrate orders ferromagnetically: E_FM < E_random
  // (and the staggered arrangement tops the exchange energy scale).
  const LsmsSolver solver = fast_solver();
  Rng rng(2);
  const double e_fm =
      solver.energy(spin::MomentConfiguration::ferromagnetic(16));
  double e_random_mean = 0.0;
  for (int k = 0; k < 4; ++k)
    e_random_mean +=
        solver.energy(spin::MomentConfiguration::random(16, rng));
  e_random_mean /= 4.0;
  std::vector<bool> sub(16);
  for (std::size_t i = 0; i < 16; ++i) sub[i] = (i % 2 == 1);
  const double e_afm =
      solver.energy(spin::MomentConfiguration::staggered(sub));
  EXPECT_LT(e_fm, e_random_mean);
  EXPECT_LT(e_random_mean, e_afm);
}

TEST(LsmsSolver, TotalEqualsSumOfLocalEnergies) {
  const LsmsSolver solver = fast_solver();
  Rng rng(3);
  const auto config = spin::MomentConfiguration::random(16, rng);
  const LocalEnergies all = solver.energies(config);
  double sum = 0.0;
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(solver.local_energy(i, config), all.per_atom[i], 1e-12);
    sum += all.per_atom[i];
  }
  EXPECT_NEAR(all.total, sum, 1e-12);
}

TEST(LsmsSolver, LocalEnergiesEqualOnEquivalentSitesOfFm) {
  const LsmsSolver solver = fast_solver();
  const LocalEnergies all =
      solver.energies(spin::MomentConfiguration::ferromagnetic(16));
  for (std::size_t i = 1; i < 16; ++i)
    EXPECT_NEAR(all.per_atom[i], all.per_atom[0], 1e-10);
}

TEST(LsmsSolver, EnergyAfterMoveMatchesFullRecompute) {
  const LsmsSolver solver = fast_solver();
  Rng rng(4);
  auto config = spin::MomentConfiguration::random(16, rng);
  LocalEnergies current = solver.energies(config);

  for (int k = 0; k < 3; ++k) {
    spin::TrialMove move;
    move.site = rng.uniform_index(16);
    move.new_direction = rng.unit_vector();

    const LocalEnergies incremental =
        solver.energy_after_move(config, move, current);
    config.set(move.site, move.new_direction);
    const LocalEnergies recomputed = solver.energies(config);

    EXPECT_NEAR(incremental.total, recomputed.total, 1e-10);
    for (std::size_t i = 0; i < 16; ++i)
      EXPECT_NEAR(incremental.per_atom[i], recomputed.per_atom[i], 1e-10);
    current = incremental;
  }
}

TEST(LsmsSolver, AffectedSitesAreSymmetricAndIncludeSelf) {
  const LsmsSolver solver = fast_solver();
  for (std::size_t i = 0; i < solver.n_atoms(); ++i) {
    const auto& affected = solver.affected_sites(i);
    EXPECT_TRUE(std::find(affected.begin(), affected.end(), i) !=
                affected.end());
    for (std::size_t j : affected) {
      const auto& back = solver.affected_sites(j);
      EXPECT_TRUE(std::find(back.begin(), back.end(), i) != back.end());
    }
  }
}

TEST(LsmsSolver, AffectedSitesOfPeriodicCrystalCoverLizNeighbors) {
  const LsmsSolver solver = fast_solver();
  // Fast parameters use a 2-shell LIZ (15 atoms in the zone). In the
  // 16-atom periodic cell those 14 neighbours map onto fewer *distinct*
  // sites: the 8 first-shell neighbours are distinct, but the 6 second-
  // shell ones (+-a along each axis) pair up through the 2-cell box,
  // giving 3 distinct sites. Affected = self + 8 + 3 = 12.
  EXPECT_EQ(solver.affected_sites(0).size(), 12u);
}

TEST(LsmsSolver, LizSizeMatchesGeometry) {
  const LsmsSolver solver = fast_solver();
  for (std::size_t i = 0; i < solver.n_atoms(); ++i)
    EXPECT_EQ(solver.liz_size(i), 15u);  // 1 + 8 + 6
}

TEST(LsmsSolver, FlopsPerEnergyMatchesAnalyticCount) {
  const LsmsSolver solver = fast_solver();
  // Fast parameters: 15-atom zones, so the Schur path factorizes the 28 x 28
  // member block, solves the two coupling columns, and closes with a
  // 2 x 2 x 28 GEMM -- per contour point (8 of them), per atom (16).
  const std::uint64_t per_point = linalg::zgetrf_flops(28) +
                                  perf::cost::zgetrs(28, 2) +
                                  perf::cost::zgemm(2, 2, 28);
  EXPECT_EQ(solver.flops_per_zone_energy(0), 8u * per_point);
  EXPECT_EQ(solver.flops_per_energy(), 16u * 8u * per_point);
}

TEST(LsmsSolver, InstrumentedFlopsMatchAnalyticCount) {
  // The analytic model must agree with the perf counters to the flop, for
  // both the unblocked (fast-radius) and blocked (paper-radius) zone orders.
  Rng rng(11);
  {
    const LsmsSolver solver = fast_solver();
    const auto config = spin::MomentConfiguration::random(16, rng);
    perf::FlopWindow window;
    solver.local_energy(0, config);
    EXPECT_EQ(window.elapsed(), solver.flops_per_zone_energy(0));
  }
  {
    const LsmsSolver solver(lattice::make_fe_supercell(2),
                            fe_lsms_parameters());
    ASSERT_EQ(solver.liz_size(0), 65u);
    const auto config = spin::MomentConfiguration::random(16, rng);
    perf::FlopWindow window;
    solver.local_energy(0, config);
    EXPECT_EQ(window.elapsed(), solver.flops_per_zone_energy(0));
  }
}

TEST(LsmsSolver, GemmFractionDominatesAtPaperGeometry) {
  // The acceptance bar of the GEMM-rich refactor: at the paper's LIZ the
  // packed ZGEMM retires at least 60 % of the flops of an energy zone.
  const LsmsSolver solver(lattice::make_fe_supercell(2), fe_lsms_parameters());
  Rng rng(12);
  const auto config = spin::MomentConfiguration::random(16, rng);
  perf::FlopWindow window;
  solver.local_energy(0, config);
  EXPECT_GE(window.gemm_fraction(), 0.6);
}

TEST(LsmsSolver, SchurPathMatchesReferenceAssembly) {
  // Reconstruct atom 0's local energy through the original path -- full
  // zone-matrix assembly and center-first factorization -- and require the
  // production Schur path to agree to 1e-10 Ry.
  const LsmsSolver solver = fast_solver();
  Rng rng(13);
  const auto config = spin::MomentConfiguration::random(16, rng);

  const LizGeometry liz =
      build_liz(solver.structure(), 0, solver.params().liz_radius);
  Complex accumulated{0.0, 0.0};
  for (const ContourPoint& cp : solver.contour()) {
    const linalg::ZMatrix p = scalar_propagator_matrix(liz, cp.z);
    const spin::Spin2x2 tau = central_tau_block(
        assemble_kkr_matrix(solver.scatterer(), liz, config, cp.z, p));
    accumulated += cp.weight * cp.z * (tau[0] + tau[3]);
  }
  const double reference = -accumulated.imag() / std::acos(-1.0);
  EXPECT_NEAR(solver.local_energy(0, config), reference, 1e-10);
}

TEST(LsmsSolver, EnergyScalesExtensively) {
  // Twice the cell volume (FM reference): twice the energy per the shared-
  // geometry zones.
  const LsmsSolver small = fast_solver(2);
  const LsmsSolver large(lattice::make_fe_supercell(3),
                         fe_lsms_parameters_fast());
  const double e_small =
      small.energy(spin::MomentConfiguration::ferromagnetic(16));
  const double e_large =
      large.energy(spin::MomentConfiguration::ferromagnetic(54));
  EXPECT_NEAR(e_large / e_small, 54.0 / 16.0, 1e-6);
}

TEST(LsmsSolver, ContractViolations) {
  const LsmsSolver solver = fast_solver();
  Rng rng(6);
  const auto wrong_size = spin::MomentConfiguration::random(8, rng);
  EXPECT_THROW(solver.energy(wrong_size), ContractError);
  EXPECT_THROW(solver.local_energy(99, wrong_size), ContractError);
  EXPECT_THROW(solver.affected_sites(99), ContractError);
}

}  // namespace
}  // namespace wlsms::lsms
