// Tests for LIZ construction and KKR matrix assembly.
#include "lsms/kkr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "lattice/cluster.hpp"
#include "lsms/fe_parameters.hpp"

namespace wlsms::lsms {
namespace {

lattice::Structure fe16() { return lattice::make_fe_supercell(2); }

TEST(Liz, PaperRadiusGives65Atoms) {
  const LizGeometry liz = build_liz(fe16(), 0, units::fe_liz_radius_a0);
  EXPECT_EQ(liz.zone_size(), 65u);
}

TEST(Liz, GeometryKeySharedAcrossEquivalentSites) {
  const lattice::Structure cell = fe16();
  const auto key0 = geometry_key(build_liz(cell, 0, 5.6));
  for (std::size_t i = 1; i < cell.size(); ++i)
    EXPECT_EQ(geometry_key(build_liz(cell, i, 5.6)), key0);
}

TEST(Liz, GeometryKeyDiffersAtSurface) {
  // In a finite cluster, centre and surface atoms have different zones.
  const auto cluster = lattice::make_spherical_cluster(
      lattice::CubicLattice::kBcc, units::fe_lattice_parameter_a0, 9.0);
  std::size_t center = 0;
  std::size_t outermost = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (cluster.position(i).norm() < cluster.position(center).norm())
      center = i;
    if (cluster.position(i).norm() > cluster.position(outermost).norm())
      outermost = i;
  }
  EXPECT_NE(geometry_key(build_liz(cluster, center, 5.6)),
            geometry_key(build_liz(cluster, outermost, 5.6)));
}

TEST(Propagator, IsSymmetricWithZeroDiagonal) {
  const LizGeometry liz = build_liz(fe16(), 3, 5.6);
  const Complex z{0.3, 0.1};
  const linalg::ZMatrix p = scalar_propagator_matrix(liz, z);
  const std::size_t n = liz.zone_size();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(p(i, i), (Complex{0.0, 0.0}));
    for (std::size_t j = 0; j < i; ++j)
      EXPECT_NEAR(std::abs(p(i, j) - p(j, i)), 0.0, 1e-14);
  }
}

TEST(Propagator, FirstRowMatchesFreePropagator) {
  const LizGeometry liz = build_liz(fe16(), 0, 5.6);
  const Complex z{0.32, 0.05};
  const linalg::ZMatrix p = scalar_propagator_matrix(liz, z);
  for (std::size_t j = 0; j < liz.members.size(); ++j) {
    const Complex expected =
        free_propagator(liz.members[j].distance, z);
    EXPECT_NEAR(std::abs(p(0, j + 1) - expected), 0.0, 1e-14);
  }
}

TEST(KkrMatrix, HasTInverseBlocksOnDiagonal) {
  const Scatterer scatterer(fe_scattering_parameters());
  const LizGeometry liz = build_liz(fe16(), 0, 5.6);
  Rng rng(3);
  const auto moments = spin::MomentConfiguration::random(16, rng);
  const Complex z{0.3, 0.08};
  const linalg::ZMatrix p = scalar_propagator_matrix(liz, z);
  const linalg::ZMatrix m = assemble_kkr_matrix(scatterer, liz, moments, z, p);

  ASSERT_EQ(m.rows(), 2 * liz.zone_size());
  const spin::Spin2x2 ti0 = scatterer.t_inverse(moments[0], z);
  EXPECT_NEAR(std::abs(m(0, 0) - ti0[0]), 0.0, 1e-13);
  EXPECT_NEAR(std::abs(m(0, 1) - ti0[1]), 0.0, 1e-13);
  EXPECT_NEAR(std::abs(m(1, 0) - ti0[2]), 0.0, 1e-13);
  EXPECT_NEAR(std::abs(m(1, 1) - ti0[3]), 0.0, 1e-13);
}

TEST(KkrMatrix, OffDiagonalIsSpinConservingPropagation) {
  const Scatterer scatterer(fe_scattering_parameters());
  const LizGeometry liz = build_liz(fe16(), 0, 5.6);
  Rng rng(4);
  const auto moments = spin::MomentConfiguration::random(16, rng);
  const Complex z{0.3, 0.08};
  const linalg::ZMatrix p = scalar_propagator_matrix(liz, z);
  const linalg::ZMatrix m = assemble_kkr_matrix(scatterer, liz, moments, z, p);
  const double strength = scatterer.params().propagator_strength;

  // Block (0, 1): -strength * g * 1_spin.
  const Complex g = strength * p(0, 1);
  EXPECT_NEAR(std::abs(m(0, 2) + g), 0.0, 1e-13);
  EXPECT_NEAR(std::abs(m(1, 3) + g), 0.0, 1e-13);
  EXPECT_NEAR(std::abs(m(0, 3)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(m(1, 2)), 0.0, 1e-15);
}

TEST(CentralTau, MatchesFullInverseBlock) {
  const Scatterer scatterer(fe_scattering_parameters());
  const LizGeometry liz = build_liz(fe16(), 0, 5.6);
  Rng rng(5);
  const auto moments = spin::MomentConfiguration::random(16, rng);
  const Complex z{0.3, 0.08};
  const linalg::ZMatrix p = scalar_propagator_matrix(liz, z);
  const linalg::ZMatrix m = assemble_kkr_matrix(scatterer, liz, moments, z, p);

  const spin::Spin2x2 tau = central_tau_block(m);
  const linalg::ZMatrix full_inverse = linalg::inverse(m);
  EXPECT_NEAR(std::abs(tau[0] - full_inverse(0, 0)), 0.0, 1e-11);
  EXPECT_NEAR(std::abs(tau[1] - full_inverse(0, 1)), 0.0, 1e-11);
  EXPECT_NEAR(std::abs(tau[2] - full_inverse(1, 0)), 0.0, 1e-11);
  EXPECT_NEAR(std::abs(tau[3] - full_inverse(1, 1)), 0.0, 1e-11);
}

TEST(CentralTau, CollinearConfigurationStaysSpinDiagonal) {
  // All moments along z: the spin channels never mix.
  const Scatterer scatterer(fe_scattering_parameters());
  const LizGeometry liz = build_liz(fe16(), 0, 5.6);
  const auto moments = spin::MomentConfiguration::ferromagnetic(16);
  const Complex z{0.35, 0.06};
  const linalg::ZMatrix p = scalar_propagator_matrix(liz, z);
  const spin::Spin2x2 tau = central_tau_block(
      assemble_kkr_matrix(scatterer, liz, moments, z, p));
  EXPECT_NEAR(std::abs(tau[1]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(tau[2]), 0.0, 1e-12);
}

// Computes tau_00 through the Schur-complement production path for the same
// inputs the reference path consumes.
spin::Spin2x2 schur_tau(const Scatterer& scatterer, const LizGeometry& liz,
                        const spin::MomentConfiguration& moments, Complex z,
                        SchurWorkspace& ws) {
  const linalg::ZMatrix p = scalar_propagator_matrix(liz, z);
  const SchurTemplates templates =
      make_schur_templates(p, scatterer.params().propagator_strength);
  const spin::Spin2x2 center = scatterer.t_inverse(moments[liz.center], z);
  std::vector<spin::Spin2x2> members(liz.members.size());
  for (std::size_t j = 0; j < liz.members.size(); ++j)
    members[j] = scatterer.t_inverse(moments[liz.members[j].site], z);
  return central_tau_schur(templates, center, members.data(), ws);
}

TEST(CentralTauSchur, MatchesReferencePathAtFastRadius) {
  const Scatterer scatterer(fe_scattering_parameters());
  const LizGeometry liz = build_liz(fe16(), 0, 5.6);
  Rng rng(6);
  const auto moments = spin::MomentConfiguration::random(16, rng);
  SchurWorkspace ws;
  for (const Complex z : {Complex{0.3, 0.08}, Complex{0.1, 0.25}}) {
    const linalg::ZMatrix p = scalar_propagator_matrix(liz, z);
    const spin::Spin2x2 reference = central_tau_block(
        assemble_kkr_matrix(scatterer, liz, moments, z, p));
    const spin::Spin2x2 schur = schur_tau(scatterer, liz, moments, z, ws);
    for (int c = 0; c < 4; ++c)
      EXPECT_NEAR(std::abs(schur[c] - reference[c]), 0.0, 1e-12)
          << "component " << c;
  }
}

TEST(CentralTauSchur, MatchesReferencePathAtPaperRadius) {
  // 65-atom zone: the member block is 128 x 128, so this exercises the
  // blocked LU + TRSM panel + Schur GEMM exactly as the production solver
  // runs them.
  const Scatterer scatterer(fe_scattering_parameters());
  const LizGeometry liz = build_liz(fe16(), 0, units::fe_liz_radius_a0);
  ASSERT_EQ(liz.zone_size(), 65u);
  Rng rng(7);
  const auto moments = spin::MomentConfiguration::random(16, rng);
  const Complex z{0.25, 0.12};
  const linalg::ZMatrix p = scalar_propagator_matrix(liz, z);
  const spin::Spin2x2 reference = central_tau_block(
      assemble_kkr_matrix(scatterer, liz, moments, z, p));
  SchurWorkspace ws;
  const spin::Spin2x2 schur = schur_tau(scatterer, liz, moments, z, ws);
  for (int c = 0; c < 4; ++c)
    EXPECT_NEAR(std::abs(schur[c] - reference[c]), 0.0, 1e-12)
        << "component " << c;
}

TEST(CentralTauSchur, IsolatedAtomInvertsCenterBlock) {
  // No members: tau = D^{-1} = t, with no linear algebra at all.
  const Scatterer scatterer(fe_scattering_parameters());
  LizGeometry lone;
  lone.center = 0;
  const auto moments = spin::MomentConfiguration::ferromagnetic(1);
  const Complex z{0.3, 0.08};
  const SchurTemplates templates =
      make_schur_templates(scalar_propagator_matrix(lone, z),
                           scatterer.params().propagator_strength);
  SchurWorkspace ws;
  const spin::Spin2x2 tau = central_tau_schur(
      templates, scatterer.t_inverse(moments[0], z), nullptr, ws);
  EXPECT_NEAR(std::abs(tau[0] - scatterer.t_up(z)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(tau[3] - scatterer.t_down(z)), 0.0, 1e-12);
}

TEST(CentralTauSchur, SingularSchurComplementThrows) {
  // A singular Schur block must fail loudly like the reference path's LU
  // (zero pivot), not return Inf/NaN tau that poisons the energies.
  const Scatterer scatterer(fe_scattering_parameters());
  LizGeometry lone;
  lone.center = 0;
  const Complex z{0.3, 0.08};
  const SchurTemplates templates =
      make_schur_templates(scalar_propagator_matrix(lone, z),
                           scatterer.params().propagator_strength);
  SchurWorkspace ws;
  const spin::Spin2x2 singular_center = {Complex{0.0, 0.0}, Complex{0.0, 0.0},
                                         Complex{0.0, 0.0}, Complex{0.0, 0.0}};
  EXPECT_THROW(central_tau_schur(templates, singular_center, nullptr, ws),
               linalg::SingularMatrixError);
}

TEST(CentralTauSchur, WorkspaceIsReusableAcrossZoneSizes) {
  // The same workspace must serve zones of different orders back to back
  // (the solver's thread-local scratch sees every zone of the walk).
  const Scatterer scatterer(fe_scattering_parameters());
  Rng rng(8);
  const auto moments = spin::MomentConfiguration::random(16, rng);
  const Complex z{0.3, 0.08};
  SchurWorkspace ws;
  const LizGeometry big = build_liz(fe16(), 0, units::fe_liz_radius_a0);
  const LizGeometry small = build_liz(fe16(), 0, 5.6);
  const spin::Spin2x2 first = schur_tau(scatterer, big, moments, z, ws);
  (void)first;
  const spin::Spin2x2 after_shrink = schur_tau(scatterer, small, moments, z, ws);
  const linalg::ZMatrix p = scalar_propagator_matrix(small, z);
  const spin::Spin2x2 reference = central_tau_block(
      assemble_kkr_matrix(scatterer, small, moments, z, p));
  for (int c = 0; c < 4; ++c)
    EXPECT_NEAR(std::abs(after_shrink[c] - reference[c]), 0.0, 1e-12);
}

TEST(CentralTau, IsolatedAtomReducesToSingleSiteT) {
  // A LIZ with no members: tau = t (the free single scatterer).
  const Scatterer scatterer(fe_scattering_parameters());
  LizGeometry lone;
  lone.center = 0;
  const auto moments = spin::MomentConfiguration::ferromagnetic(1);
  const Complex z{0.3, 0.08};
  const linalg::ZMatrix p = scalar_propagator_matrix(lone, z);
  const spin::Spin2x2 tau = central_tau_block(
      assemble_kkr_matrix(scatterer, lone, moments, z, p));
  EXPECT_NEAR(std::abs(tau[0] - scatterer.t_up(z)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(tau[3] - scatterer.t_down(z)), 0.0, 1e-12);
}

}  // namespace
}  // namespace wlsms::lsms
