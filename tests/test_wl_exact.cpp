// Property tests of the Wang-Landau estimator against exactly solvable
// systems. These pin down the *correctness* of the whole sampling stack:
//
//  1. a single Heisenberg bond has E = -J cos(theta) with cos(theta)
//     uniform, so g(E) is exactly constant on [-J, J];
//  2. two independent bonds convolve two uniforms: ln g is an exact
//     triangle, and the canonical internal energy is twice the single-bond
//     Langevin result U(T) = -J L(beta J), L(x) = coth x - 1/x.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "common/units.hpp"
#include "heisenberg/heisenberg.hpp"
#include "lattice/cluster.hpp"
#include "thermo/observables.hpp"
#include "wl/wanglandau.hpp"

namespace wlsms::wl {
namespace {

double langevin(double x) { return 1.0 / std::tanh(x) - 1.0 / x; }

HeisenbergEnergy single_bond_energy(double j) {
  return HeisenbergEnergy(heisenberg::HeisenbergModel(
      lattice::make_cubic_cluster(lattice::CubicLattice::kSimpleCubic, 1.0, 2,
                                  1, 1),
      {j}));
}

HeisenbergEnergy two_bond_energy(double j) {
  // 4 atoms in a row with open boundaries and nearest-neighbour J would make
  // 3 bonds; two *independent* dimers need a 2x2x1 arrangement where only
  // x-direction pairs are within the coupling shell.
  const auto structure = lattice::Structure::finite(
      {{0, 0, 0}, {1, 0, 0}, {0, 10, 0}, {1, 10, 0}});
  return HeisenbergEnergy(heisenberg::HeisenbergModel(structure, {j}));
}

WangLandau converge(const EnergyFunction& energy, DosGridConfig grid,
                    double gamma_final, std::uint64_t seed) {
  WangLandauConfig config;
  config.grid = grid;
  config.n_walkers = 2;
  config.check_interval = 2000;
  config.flatness = 0.8;
  config.max_iteration_steps = 400000;
  config.max_steps = 80000000;
  WangLandau sampler(energy, config,
                     std::make_unique<HalvingSchedule>(1.0, gamma_final),
                     Rng(seed));
  sampler.run();
  return sampler;
}

TEST(WlExact, SingleBondDosIsFlat) {
  const HeisenbergEnergy energy = single_bond_energy(1.0);
  const WangLandau sampler =
      converge(energy, {-1.02, 1.02, 102, 0.005}, 1e-5, 11);

  // Interior ln g must be constant to well under one ln-unit.
  const auto series = sampler.dos().visited_series();
  ASSERT_GT(series.size(), 90u);
  double lo = 1e300;
  double hi = -1e300;
  for (std::size_t i = 3; i + 3 < series.size(); ++i) {
    lo = std::min(lo, series[i].second);
    hi = std::max(hi, series[i].second);
  }
  EXPECT_LT(hi - lo, 0.8);
}

TEST(WlExact, SingleBondInternalEnergyMatchesLangevin) {
  const double j = 1.0;  // Ry -- a huge bond; T ranges are scaled to match
  const HeisenbergEnergy energy = single_bond_energy(j);
  const WangLandau sampler =
      converge(energy, {-1.02, 1.02, 102, 0.005}, 1e-5, 12);
  const thermo::DosTable table = thermo::dos_table(sampler.dos());

  for (double x : {0.5, 1.0, 2.0, 4.0}) {
    // x = beta J -> T = J / (k_B x).
    const double t = j / (units::k_boltzmann_ry * x);
    const double u = thermo::observables_at(table, t).internal_energy;
    EXPECT_NEAR(u, -j * langevin(x), 0.02) << "x=" << x;
  }
}

TEST(WlExact, SingleBondSpecificHeatMatchesLangevinDerivative) {
  // c = dU/dT = k_B x^2 L'(x), L'(x) = 1/x^2 - 1/sinh^2(x).
  const double j = 1.0;
  const HeisenbergEnergy energy = single_bond_energy(j);
  const WangLandau sampler =
      converge(energy, {-1.02, 1.02, 102, 0.005}, 1e-5, 13);
  const thermo::DosTable table = thermo::dos_table(sampler.dos());

  for (double x : {0.5, 1.0, 2.0}) {
    const double t = j / (units::k_boltzmann_ry * x);
    const double c = thermo::observables_at(table, t).specific_heat;
    const double sinh_x = std::sinh(x);
    const double exact =
        units::k_boltzmann_ry * x * x * (1.0 / (x * x) - 1.0 / (sinh_x * sinh_x));
    EXPECT_NEAR(c / units::k_boltzmann_ry, exact / units::k_boltzmann_ry, 0.05)
        << "x=" << x;
  }
}

TEST(WlExact, TwoIndependentBondsGiveTriangularLnG) {
  // Convolution of two uniform densities on [-J, J]: g(E) = (2J - |E|)/(4J^2)
  // for |E| <= 2J, so ln g(E) - ln g(0) = ln(1 - |E|/(2J)).
  const double j = 1.0;
  const HeisenbergEnergy energy = two_bond_energy(j);
  const WangLandau sampler =
      converge(energy, {-2.04, 2.04, 136, 0.0037}, 1e-5, 14);

  const auto series = sampler.dos().visited_series();
  ASSERT_GT(series.size(), 100u);
  // Locate ln g at E ~ 0 for normalization.
  double ln_g0 = 0.0;
  double best = 1e300;
  for (const auto& [e, lng] : series)
    if (std::abs(e) < best) {
      best = std::abs(e);
      ln_g0 = lng;
    }
  double worst = 0.0;
  for (const auto& [e, lng] : series) {
    if (std::abs(e) > 1.6) continue;  // skip the singular tips
    const double expected = std::log(1.0 - std::abs(e) / 2.0);
    worst = std::max(worst, std::abs((lng - ln_g0) - expected));
  }
  EXPECT_LT(worst, 0.6);
}

TEST(WlExact, TwoBondEnergyIsTwiceSingleBondLangevin) {
  const double j = 1.0;
  const HeisenbergEnergy energy = two_bond_energy(j);
  const WangLandau sampler =
      converge(energy, {-2.04, 2.04, 136, 0.0037}, 1e-5, 15);
  const thermo::DosTable table = thermo::dos_table(sampler.dos());
  for (double x : {0.5, 1.0, 2.0}) {
    const double t = j / (units::k_boltzmann_ry * x);
    const double u = thermo::observables_at(table, t).internal_energy;
    EXPECT_NEAR(u, -2.0 * j * langevin(x), 0.05) << "x=" << x;
  }
}

TEST(WlExact, OneOverTScheduleReachesSameAnswer) {
  const double j = 1.0;
  const HeisenbergEnergy energy = single_bond_energy(j);
  WangLandauConfig config;
  config.grid = {-1.02, 1.02, 102, 0.005};
  config.n_walkers = 2;
  config.check_interval = 2000;
  config.flatness = 0.8;
  config.max_iteration_steps = 400000;
  config.max_steps = 30000000;
  WangLandau sampler(
      energy, config,
      std::make_unique<OneOverTSchedule>(config.grid.bins, 1.0, 3e-6),
      Rng(16));
  sampler.run();
  const thermo::DosTable table = thermo::dos_table(sampler.dos());
  const double t = j / (units::k_boltzmann_ry * 1.0);
  EXPECT_NEAR(thermo::observables_at(table, t).internal_energy,
              -j * langevin(1.0), 0.03);
}

}  // namespace
}  // namespace wlsms::wl
