// Tests for the stochastic Landau-Lifshitz-Gilbert integrator (the spin-
// dynamics alternative the paper's §I contrasts Wang-Landau against).
#include "dynamics/llg.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "common/units.hpp"
#include "lattice/cluster.hpp"
#include "lattice/structure.hpp"
#include "lsms/fe_parameters.hpp"
#include "mc/metropolis.hpp"
#include "wl/energy_function.hpp"

namespace wlsms::dynamics {
namespace {

heisenberg::HeisenbergModel fe16_model() {
  std::vector<double> j = lsms::fe_reference_exchange();
  for (double& v : j) v *= lsms::fe_exchange_energy_scale;
  return heisenberg::HeisenbergModel(lattice::make_fe_supercell(2), j);
}

TEST(EffectiveField, MatchesAnalyticFormOnDimer) {
  const auto structure = lattice::make_cubic_cluster(
      lattice::CubicLattice::kSimpleCubic, 1.0, 2, 1, 1);
  heisenberg::HeisenbergModel model(structure, {0.7});
  model.set_uniform_anisotropy(0.2, {0, 0, 1});
  const auto config = spin::MomentConfiguration::from_directions(
      {{1, 0, 0}, {0, 0, 1}});
  // Site 0: J * e_1 + 2K (e_0 . z) z = (0, 0, 0.7) + 0.
  const Vec3 h0 = model.effective_field(0, config);
  EXPECT_NEAR(h0.x, 0.0, 1e-14);
  EXPECT_NEAR(h0.z, 0.7, 1e-14);
  // Site 1: J * e_0 + 2K (e_1 . z) z = (0.7, 0, 0) + (0, 0, 0.4).
  const Vec3 h1 = model.effective_field(1, config);
  EXPECT_NEAR(h1.x, 0.7, 1e-14);
  EXPECT_NEAR(h1.z, 0.4, 1e-14);
}

TEST(EffectiveField, IsMinusEnergyGradient) {
  // Central differences of E along a tangent direction must equal -H . t.
  const heisenberg::HeisenbergModel model = fe16_model();
  Rng rng(3);
  auto config = spin::MomentConfiguration::random(16, rng);
  for (std::size_t i : {0u, 5u, 11u}) {
    const Vec3 m = config[i];
    Vec3 axis = (std::abs(m.z) < 0.9) ? Vec3{0, 0, 1} : Vec3{1, 0, 0};
    const Vec3 tangent = m.cross(axis).normalized();
    const double h = 1e-6;
    auto shifted = [&](double s) {
      auto c = config;
      c.set(i, (m + s * tangent).normalized());
      return model.energy(c);
    };
    const double gradient = (shifted(h) - shifted(-h)) / (2.0 * h);
    EXPECT_NEAR(-model.effective_field(i, config).dot(tangent), gradient,
                1e-7);
  }
}

TEST(SpinDynamics, PreservesUnitLength) {
  const heisenberg::HeisenbergModel model = fe16_model();
  Rng rng(4);
  LlgParameters params;
  params.damping = 0.2;
  params.timestep = 1.0;  // reduced by the mRy field scale
  SpinDynamics dynamics(model, spin::MomentConfiguration::random(16, rng),
                        params);
  dynamics.run(500);
  for (std::size_t i = 0; i < 16; ++i)
    EXPECT_NEAR(dynamics.configuration()[i].norm(), 1.0, 1e-12);
}

TEST(SpinDynamics, DampedDynamicsRelaxToFerromagnet) {
  const heisenberg::HeisenbergModel model = fe16_model();
  Rng rng(5);
  LlgParameters params;
  params.damping = 0.5;
  params.timestep = 2.0;
  SpinDynamics dynamics(model, spin::MomentConfiguration::random(16, rng),
                        params);
  const double e_start = dynamics.energy();
  dynamics.run(20000);
  EXPECT_LT(dynamics.energy(), e_start);
  EXPECT_NEAR(dynamics.energy(), model.ferromagnetic_energy(),
              0.02 * std::abs(model.ferromagnetic_energy()));
  EXPECT_GT(dynamics.magnetization(), 0.98);
}

TEST(SpinDynamics, EnergyDecreasesMonotonicallyAtZeroTemperature) {
  const heisenberg::HeisenbergModel model = fe16_model();
  Rng rng(6);
  LlgParameters params;
  params.damping = 0.3;
  params.timestep = 1.0;
  SpinDynamics dynamics(model, spin::MomentConfiguration::random(16, rng),
                        params);
  double previous = dynamics.energy();
  for (int block = 0; block < 40; ++block) {
    dynamics.run(100);
    const double e = dynamics.energy();
    EXPECT_LE(e, previous + 1e-9);
    previous = e;
  }
}

TEST(SpinDynamics, UndampedPrecessionConservesEnergy) {
  const heisenberg::HeisenbergModel model = fe16_model();
  Rng rng(7);
  LlgParameters params;
  params.damping = 0.0;
  params.timestep = 0.5;
  SpinDynamics dynamics(model, spin::MomentConfiguration::random(16, rng),
                        params);
  const double e0 = dynamics.energy();
  dynamics.run(4000);
  // Heun drifts at O(dt^2) per step; over this horizon the drift must stay
  // far below the exchange scale.
  EXPECT_NEAR(dynamics.energy(), e0, 5e-4);
  EXPECT_NEAR(dynamics.time(), 2000.0, 1e-9);
}

TEST(SpinDynamics, UndampedPrecessionConservesMagnetization) {
  // Without damping and noise the total moment precesses but |M| of an
  // exchange-only Hamiltonian is conserved.
  const heisenberg::HeisenbergModel model = fe16_model();
  Rng rng(8);
  LlgParameters params;
  params.damping = 0.0;
  params.timestep = 0.5;
  SpinDynamics dynamics(model, spin::MomentConfiguration::random(16, rng),
                        params);
  const double m0 = dynamics.magnetization();
  dynamics.run(4000);
  EXPECT_NEAR(dynamics.magnetization(), m0, 1e-3);
}

TEST(SpinDynamics, ThermalDynamicsSampleBoltzmann) {
  // Fluctuation-dissipation check: the long-time average energy of the
  // stochastic LLG must match canonical Metropolis sampling.
  const heisenberg::HeisenbergModel model = fe16_model();
  const double t = 900.0;

  LlgParameters params;
  params.damping = 0.5;
  params.timestep = 1.0;
  params.temperature_k = t;
  params.seed = 9;
  Rng rng(10);
  SpinDynamics dynamics(model, spin::MomentConfiguration::random(16, rng),
                        params);
  dynamics.run(20000);  // thermalize
  double sum_e = 0.0;
  int samples = 0;
  for (int block = 0; block < 600; ++block) {
    dynamics.run(50);
    sum_e += dynamics.energy();
    ++samples;
  }
  const double u_llg = sum_e / samples;

  const wl::HeisenbergEnergy energy(fe16_model());
  mc::MetropolisConfig mc_config;
  mc_config.temperature_k = t;
  mc_config.thermalization_steps = 200000;
  mc_config.measurement_steps = 600000;
  mc_config.measure_interval = 16;
  const mc::MetropolisResult reference = mc::metropolis_run(
      energy, spin::MomentConfiguration::random(16, rng), mc_config, rng);

  EXPECT_NEAR(u_llg, reference.mean_energy,
              0.08 * std::abs(reference.mean_energy));
}

TEST(SpinDynamics, TrappedInAnisotropyWell) {
  // The §I time-scale dilemma in miniature: at low temperature a strongly
  // anisotropic particle started in the +z well stays there for the whole
  // (long) trajectory, while its thermal equilibrium is symmetric.
  const auto structure = lattice::make_cubic_cluster(
      lattice::CubicLattice::kSimpleCubic, 1.0, 2, 1, 1);
  heisenberg::HeisenbergModel model(structure, {2e-3});
  model.set_uniform_anisotropy(2e-3, {0, 0, 1});

  LlgParameters params;
  params.damping = 0.3;
  params.timestep = 1.0;
  params.temperature_k = 120.0;  // barrier / k_B T ~ 50
  params.seed = 11;
  SpinDynamics dynamics(model, spin::MomentConfiguration::ferromagnetic(2),
                        params);
  double min_mz = 1.0;
  for (int block = 0; block < 400; ++block) {
    dynamics.run(100);
    min_mz = std::min(min_mz, dynamics.magnetization_z());
  }
  EXPECT_GT(min_mz, 0.2);  // never switched
}

TEST(SpinDynamics, ContractViolations) {
  const heisenberg::HeisenbergModel model = fe16_model();
  Rng rng(12);
  LlgParameters params;
  params.timestep = 0.0;
  EXPECT_THROW(SpinDynamics(model, spin::MomentConfiguration::random(16, rng),
                            params),
               ContractError);
  params.timestep = 0.1;
  params.temperature_k = 100.0;
  params.damping = 0.0;  // bath without damping violates FD
  EXPECT_THROW(SpinDynamics(model, spin::MomentConfiguration::random(16, rng),
                            params),
               ContractError);
  params.damping = 0.1;
  EXPECT_THROW(SpinDynamics(model, spin::MomentConfiguration::random(8, rng),
                            params),
               ContractError);
}

}  // namespace
}  // namespace wlsms::dynamics
