// Fuzz/property tests for the serve wire protocol: every payload round-trips
// bit-exactly, and truncated, byte-flipped, oversize-length, or garbage-
// prefixed streams always fail with the protocol's typed errors — never a
// crash, OOB read (asan), or desynced parse. Mirrors test_comm_wire for the
// session layer.
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "comm/framing.hpp"
#include "common/rng.hpp"

namespace wlsms::serve {
namespace {

using serial::SerializationError;

spin::MomentConfiguration random_config(std::size_t n, Rng& rng) {
  return spin::MomentConfiguration::random(n, rng);
}

bool same_config(const spin::MomentConfiguration& a,
                 const spin::MomentConfiguration& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::memcmp(&a[i], &b[i], sizeof(Vec3)) != 0) return false;
  return true;
}

// ---- round trips ----------------------------------------------------------

TEST(ServeProtocol, HelloRoundTrip) {
  ServeHello hello;
  hello.tenant = "walker-farm_01";
  hello.resume_session = 42;
  hello.resume_token = 0xDEADBEEFCAFEBABEull;
  hello.trace_node = 0x123456789ABCull;
  hello.t0_us = 987654321;
  const ServeHello back = decode_serve_hello(encode_serve_hello(hello));
  EXPECT_EQ(back.tenant, hello.tenant);
  EXPECT_EQ(back.resume_session, hello.resume_session);
  EXPECT_EQ(back.resume_token, hello.resume_token);
  EXPECT_EQ(back.trace_node, hello.trace_node);
  EXPECT_EQ(back.t0_us, hello.t0_us);
}

TEST(ServeProtocol, WelcomeRoundTrip) {
  ServeWelcome welcome;
  welcome.session = 7;
  welcome.resume_token = 123456789;
  welcome.n_atoms = 16;
  welcome.resumed = true;
  welcome.n_replayed = 3;
  welcome.n_pending = 5;
  welcome.trace_node = 0xA0B0C0D0E0ull;
  welcome.t1_us = 111;
  welcome.t2_us = 222;
  const ServeWelcome back =
      decode_serve_welcome(encode_serve_welcome(welcome));
  EXPECT_EQ(back.session, welcome.session);
  EXPECT_EQ(back.resume_token, welcome.resume_token);
  EXPECT_EQ(back.n_atoms, welcome.n_atoms);
  EXPECT_EQ(back.resumed, welcome.resumed);
  EXPECT_EQ(back.n_replayed, welcome.n_replayed);
  EXPECT_EQ(back.n_pending, welcome.n_pending);
  EXPECT_EQ(back.trace_node, welcome.trace_node);
  EXPECT_EQ(back.t1_us, welcome.t1_us);
  EXPECT_EQ(back.t2_us, welcome.t2_us);
}

TEST(ServeProtocol, SubmitRoundTripIsBitExact) {
  Rng rng(501);
  for (int round = 0; round < 20; ++round) {
    wl::EnergyRequest request;
    request.walker = rng.uniform_index(64);
    request.ticket = rng.next();
    request.trace.trace_id = rng.next();
    request.trace.span_id = rng.next();
    request.config = random_config(1 + rng.uniform_index(32), rng);
    const wl::EnergyRequest back =
        decode_serve_submit(encode_serve_submit(request));
    EXPECT_EQ(back.walker, request.walker);
    EXPECT_EQ(back.ticket, request.ticket);
    EXPECT_EQ(back.trace.trace_id, request.trace.trace_id);
    EXPECT_EQ(back.trace.span_id, request.trace.span_id);
    EXPECT_TRUE(same_config(back.config, request.config));
  }
}

TEST(ServeProtocol, ResultCarriesStageBreakdown) {
  wl::EnergyResult result;
  result.walker = 5;
  result.ticket = 77;
  result.energy = -3.25;
  StageBreakdown stages;
  stages.queue_us = 1200;
  stages.solve_us = 45000;
  stages.serialize_us = 80;
  const ServeResultFrame back =
      decode_serve_result_frame(encode_serve_result(result, stages));
  EXPECT_EQ(back.result.ticket, result.ticket);
  EXPECT_EQ(back.result.energy, result.energy);
  EXPECT_EQ(back.stages.queue_us, stages.queue_us);
  EXPECT_EQ(back.stages.solve_us, stages.solve_us);
  EXPECT_EQ(back.stages.serialize_us, stages.serialize_us);
  // Default breakdown (legacy callers): all-zero stage vector, not garbage.
  const ServeResultFrame bare =
      decode_serve_result_frame(encode_serve_result(result));
  EXPECT_EQ(bare.stages.queue_us, 0u);
  EXPECT_EQ(bare.stages.solve_us, 0u);
  EXPECT_EQ(bare.stages.serialize_us, 0u);
}

TEST(ServeProtocol, StatusConversationRoundTrip) {
  // Request payload is header-only; the reply carries arbitrary text
  // (Prometheus exposition) including newlines and UTF-8.
  decode_status_request(encode_status_request());
  const std::string text =
      "# TYPE serve_stage_ms_solve histogram\n"
      "serve_stage_ms_solve_bucket{le=\"0.01\"} 0\nµs tail";
  EXPECT_EQ(decode_status_text(encode_status_text(text)), text);
  EXPECT_EQ(decode_status_text(encode_status_text("")), "");
  // Kind confusion between the two status payloads throws, like every codec.
  EXPECT_THROW(decode_status_request(encode_status_text("x")),
               SerializationError);
  EXPECT_THROW((void)decode_status_text(encode_status_request()),
               SerializationError);
}

TEST(ServeProtocol, ResultAndRejectRoundTrip) {
  wl::EnergyResult result;
  result.walker = 3;
  result.ticket = 99;
  result.energy = -1.734e2;
  result.failed = true;
  const wl::EnergyResult res_back =
      decode_serve_result(encode_serve_result(result));
  EXPECT_EQ(res_back.walker, result.walker);
  EXPECT_EQ(res_back.ticket, result.ticket);
  EXPECT_EQ(res_back.energy, result.energy);
  EXPECT_EQ(res_back.failed, result.failed);

  for (const auto reason :
       {ServeReject::Reason::kQueueFull, ServeReject::Reason::kQuotaExceeded,
        ServeReject::Reason::kBadRequest,
        ServeReject::Reason::kShuttingDown}) {
    ServeReject reject;
    reject.ticket = 17;
    reject.reason = reason;
    const ServeReject back = decode_serve_reject(encode_serve_reject(reject));
    EXPECT_EQ(back.ticket, reject.ticket);
    EXPECT_EQ(back.reason, reject.reason);
  }
}

TEST(ServeProtocol, SessionCheckpointRoundTrip) {
  Rng rng(502);
  SessionCheckpoint checkpoint;
  checkpoint.session = 12;
  checkpoint.resume_token = rng.next();
  checkpoint.tenant = "tenant.a";
  for (int k = 0; k < 3; ++k) {
    wl::EnergyRequest request;
    request.walker = static_cast<std::size_t>(k);
    request.ticket = 100 + static_cast<std::uint64_t>(k);
    request.config = random_config(8, rng);
    checkpoint.pending.push_back(std::move(request));
  }
  for (int k = 0; k < 2; ++k) {
    wl::EnergyResult result;
    result.walker = static_cast<std::size_t>(k);
    result.ticket = 50 + static_cast<std::uint64_t>(k);
    result.energy = rng.uniform(-5.0, 5.0);
    result.failed = k == 1;
    checkpoint.undelivered.push_back(result);
  }

  const SessionCheckpoint back =
      decode_session_checkpoint(encode_session_checkpoint(checkpoint));
  EXPECT_EQ(back.session, checkpoint.session);
  EXPECT_EQ(back.resume_token, checkpoint.resume_token);
  EXPECT_EQ(back.tenant, checkpoint.tenant);
  ASSERT_EQ(back.pending.size(), checkpoint.pending.size());
  for (std::size_t k = 0; k < back.pending.size(); ++k) {
    EXPECT_EQ(back.pending[k].ticket, checkpoint.pending[k].ticket);
    EXPECT_TRUE(same_config(back.pending[k].config,
                            checkpoint.pending[k].config));
  }
  ASSERT_EQ(back.undelivered.size(), checkpoint.undelivered.size());
  for (std::size_t k = 0; k < back.undelivered.size(); ++k) {
    EXPECT_EQ(back.undelivered[k].ticket, checkpoint.undelivered[k].ticket);
    EXPECT_EQ(back.undelivered[k].energy, checkpoint.undelivered[k].energy);
    EXPECT_EQ(back.undelivered[k].failed, checkpoint.undelivered[k].failed);
  }
}

// ---- validation -----------------------------------------------------------

TEST(ServeProtocol, HostileTenantNamesRejected) {
  ServeHello hello;
  hello.tenant = "";
  EXPECT_THROW(decode_serve_hello(encode_serve_hello(hello)),
               SerializationError);
  hello.tenant = std::string(kMaxTenantBytes + 1, 'a');
  EXPECT_THROW(decode_serve_hello(encode_serve_hello(hello)),
               SerializationError);
  // Tenant names feed metric series and checkpoint filenames: spaces,
  // control bytes, and path separators must not survive decoding. '/' is
  // printable and allowed by the charset; directory traversal is prevented
  // by the daemon never using the tenant as a filename component.
  hello.tenant = "bad tenant";
  EXPECT_THROW(decode_serve_hello(encode_serve_hello(hello)),
               SerializationError);
  hello.tenant = std::string("evil\n") + "x";
  EXPECT_THROW(decode_serve_hello(encode_serve_hello(hello)),
               SerializationError);
  hello.tenant = std::string(1, '\0') + "zero";
  EXPECT_THROW(decode_serve_hello(encode_serve_hello(hello)),
               SerializationError);
}

TEST(ServeProtocol, NullSessionsAndEmptyConfigsRejected) {
  ServeWelcome welcome;  // session == 0
  welcome.n_atoms = 4;
  EXPECT_THROW(decode_serve_welcome(encode_serve_welcome(welcome)),
               SerializationError);

  wl::EnergyRequest request;  // empty config
  request.walker = 0;
  request.ticket = 1;
  EXPECT_THROW(decode_serve_submit(encode_serve_submit(request)),
               SerializationError);

  SessionCheckpoint checkpoint;  // session == 0
  checkpoint.tenant = "t";
  EXPECT_THROW(
      decode_session_checkpoint(encode_session_checkpoint(checkpoint)),
      SerializationError);
}

TEST(ServeProtocol, WrongPayloadKindRejectedAcrossCodecs) {
  Rng rng(503);
  wl::EnergyRequest request;
  request.walker = 1;
  request.ticket = 2;
  request.config = random_config(4, rng);
  const std::vector<std::byte> submit = encode_serve_submit(request);
  EXPECT_THROW(decode_serve_hello(submit), SerializationError);
  EXPECT_THROW(decode_serve_welcome(submit), SerializationError);
  EXPECT_THROW(decode_serve_result(submit), SerializationError);
  EXPECT_THROW(decode_serve_reject(submit), SerializationError);
  EXPECT_THROW(decode_session_checkpoint(submit), SerializationError);
}

// ---- truncation / corruption / garbage ------------------------------------

TEST(ServeProtocol, EveryTruncationOfEveryPayloadThrows) {
  Rng rng(504);
  wl::EnergyRequest request;
  request.walker = 2;
  request.ticket = 3;
  request.config = random_config(4, rng);
  SessionCheckpoint checkpoint;
  checkpoint.session = 5;
  checkpoint.resume_token = 6;
  checkpoint.tenant = "t";
  checkpoint.pending.push_back(request);
  ServeHello hello;
  hello.tenant = "alice";
  ServeWelcome welcome;
  welcome.session = 1;

  const std::vector<std::vector<std::byte>> payloads = {
      encode_serve_hello(hello),
      encode_serve_welcome(welcome),
      encode_serve_submit(request),
      encode_serve_result({1, 2, -3.5, false}, {10, 20, 30}),
      encode_session_checkpoint(checkpoint),
      encode_status_request(),
      encode_status_text("# TYPE x counter\nx 1\n"),
  };
  const auto decoders = {
      +[](const std::vector<std::byte>& b) { (void)decode_serve_hello(b); },
      +[](const std::vector<std::byte>& b) { (void)decode_serve_welcome(b); },
      +[](const std::vector<std::byte>& b) { (void)decode_serve_submit(b); },
      +[](const std::vector<std::byte>& b) { (void)decode_serve_result(b); },
      +[](const std::vector<std::byte>& b) {
        (void)decode_session_checkpoint(b);
      },
      +[](const std::vector<std::byte>& b) { decode_status_request(b); },
      +[](const std::vector<std::byte>& b) { (void)decode_status_text(b); },
  };
  std::size_t which = 0;
  for (const auto& decode : decoders) {
    const std::vector<std::byte>& bytes = payloads[which++];
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      const std::vector<std::byte> truncated(
          bytes.begin(), bytes.begin() + static_cast<long>(cut));
      EXPECT_THROW(decode(truncated), SerializationError)
          << "payload " << which - 1 << " cut at " << cut;
    }
  }
}

TEST(ServeProtocol, RandomByteFlipsNeverCrashAnyDecoder) {
  Rng rng(505);
  wl::EnergyRequest request;
  request.walker = 1;
  request.ticket = 44;
  request.config = random_config(6, rng);
  SessionCheckpoint checkpoint;
  checkpoint.session = 9;
  checkpoint.resume_token = 10;
  checkpoint.tenant = "fuzz";
  checkpoint.pending.push_back(request);
  checkpoint.undelivered.push_back({0, 45, 1.5, false});

  const std::vector<std::vector<std::byte>> payloads = {
      encode_serve_submit(request),
      encode_session_checkpoint(checkpoint),
      encode_serve_result({0, 45, 1.5, false}, {7, 8, 9}),
      encode_status_text("# TYPE serve_results counter\nserve_results 3\n"),
  };
  for (const std::vector<std::byte>& bytes : payloads) {
    for (int round = 0; round < 600; ++round) {
      std::vector<std::byte> corrupt = bytes;
      const std::size_t where = rng.uniform_index(corrupt.size());
      corrupt[where] ^= static_cast<std::byte>(1 + rng.uniform_index(255));
      try {
        (void)decode_serve_submit(corrupt);
      } catch (const SerializationError&) {
      }
      try {
        (void)decode_session_checkpoint(corrupt);
      } catch (const SerializationError&) {
      }
      try {
        (void)decode_serve_result_frame(corrupt);
      } catch (const SerializationError&) {
      }
      try {
        (void)decode_status_text(corrupt);
      } catch (const SerializationError&) {
      }
    }
  }
}

TEST(ServeProtocol, PureGarbageBuffersNeverCrash) {
  Rng rng(506);
  for (int round = 0; round < 400; ++round) {
    std::vector<std::byte> garbage(rng.uniform_index(200));
    for (std::byte& b : garbage)
      b = static_cast<std::byte>(rng.uniform_index(256));
    try {
      (void)decode_serve_hello(garbage);
    } catch (const SerializationError&) {
    }
    try {
      (void)decode_serve_submit(garbage);
    } catch (const SerializationError&) {
    }
  }
}

TEST(ServeProtocol, GarbagePrefixedStreamFailsAtTheAssemblerNotLater) {
  // A stream that starts with random bytes either yields a frame whose
  // decode throws SerializationError, or trips the assembler's length
  // hardening with CommError. Either way the daemon's per-connection error
  // path fires; nothing crashes or silently "succeeds".
  Rng rng(507);
  for (int round = 0; round < 200; ++round) {
    comm::FrameAssembler assembler;
    std::vector<std::byte> garbage(8 + rng.uniform_index(64));
    for (std::byte& b : garbage)
      b = static_cast<std::byte>(rng.uniform_index(256));
    try {
      assembler.push(garbage.data(), garbage.size());
      comm::Message frame;
      while (assembler.pop(frame)) {
        try {
          (void)decode_serve_hello(frame.payload);
        } catch (const SerializationError&) {
        }
      }
    } catch (const comm::CommError&) {
      // corrupt length field — the expected outcome for most garbage
    }
  }
}

TEST(ServeProtocol, OversizeLengthFieldIsRejected) {
  comm::FrameAssembler assembler;
  const std::uint32_t huge = 0xFFFFFFF0u;  // > kMaxFrameBytes
  std::byte header[8];
  std::memcpy(header, &huge, 4);
  const std::uint32_t tag = kTagServeHello;
  std::memcpy(header + 4, &tag, 4);
  assembler.push(header, sizeof(header));
  comm::Message frame;
  EXPECT_THROW((void)assembler.pop(frame), comm::CommError);
}

}  // namespace
}  // namespace wlsms::serve
